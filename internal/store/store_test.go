package store

import (
	"os"
	"path/filepath"
	"testing"

	"heteropart/internal/core"
	"heteropart/internal/plancache"
	"heteropart/internal/speed"
)

// testModel builds a deterministic heterogeneous cluster, mixing function
// representations so the codec's round trip is exercised end to end.
func testModel(p int, seed uint32) []speed.Function {
	fns := make([]speed.Function, p)
	s := seed
	for i := range fns {
		s = s*1664525 + 1013904223
		peak := 1e7 * (1 + float64(s%900)/100)
		s = s*1664525 + 1013904223
		paging := 1e7 * (1 + float64(s%50))
		a := &speed.Analytic{
			Peak: peak, HalfRise: 1e3, CacheEdge: 1e5, CacheDecay: 0.8,
			PagingPoint: paging, PagingWidth: paging / 5, PagingFloor: 0.02,
			Max: 2e9,
		}
		switch i % 3 {
		case 0:
			fns[i] = a
		case 1:
			fns[i] = speed.MustConstant(peak/2, 2e9)
		default:
			pts := make([]speed.Point, 0, 12)
			for x := 1e3; x < a.Max; x *= 8 {
				pts = append(pts, speed.Point{X: x, Y: a.Eval(x)})
			}
			pts = append(pts, speed.Point{X: a.Max, Y: a.Eval(a.Max)})
			fns[i] = speed.MustPiecewiseLinear(speed.EnforceShape(pts))
		}
	}
	return fns
}

// plansFor computes real plans against a model, exactly as the cache's
// insert tap would hand them to the store.
func plansFor(t *testing.T, fp uint64, fns []speed.Function, sizes []int64) []plancache.PlanRecord {
	t.Helper()
	out := make([]plancache.PlanRecord, 0, len(sizes))
	for _, n := range sizes {
		res, err := core.Combined(n, fns)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, plancache.PlanRecord{
			Model: fp, N: n, Algo: core.AlgoCombined, OptsKey: core.OptionsKey(),
			Slope: res.Slope, Alloc: res.Alloc, Stats: res.Stats,
		})
	}
	return out
}

func mustOpen(t *testing.T, dir string, opts ...Options) *Store {
	t.Helper()
	o := Options{Dir: dir}
	if len(opts) > 0 {
		o = opts[0]
		o.Dir = dir
	}
	s, err := Open(o)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestOpenEmptyAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if st := s.Stats(); st.Models != 0 || st.Plans != 0 || st.LoadedFromSnapshot {
		t.Fatalf("fresh store not empty: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	s2 := mustOpen(t, dir)
	defer s2.Close()
	if st := s2.Stats(); !st.LoadedFromSnapshot || st.Models != 0 {
		t.Fatalf("reopen after empty close: %+v", st)
	}
}

func TestWALReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(9, 41)
	sizes := []int64{100_000, 250_000, 500_000, 1_000_000}

	s := mustOpen(t, dir)
	fp, replaced, err := s.PutModel("clusterA", fns)
	if err != nil || replaced {
		t.Fatalf("PutModel: fp=%x replaced=%v err=%v", fp, replaced, err)
	}
	want := plansFor(t, fp, fns, sizes)
	for _, r := range want {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no snapshot — recovery must come from the WAL alone.

	s2 := mustOpen(t, dir)
	defer s2.Close()
	st := s2.Stats()
	if st.LoadedFromSnapshot {
		t.Fatalf("no snapshot was written, yet one loaded: %+v", st)
	}
	if st.ReplayedModels != 1 || st.ReplayedPlans != len(sizes) || st.QuarantinedRecords != 0 {
		t.Fatalf("replay: %+v", st)
	}
	gotFns, ok := s2.Model(fp)
	if !ok {
		t.Fatalf("model %x lost", fp)
	}
	if got := speed.Fingerprint(gotFns); got != fp {
		t.Fatalf("restored model fingerprint %x != %x", got, fp)
	}
	plans := s2.Plans()
	if len(plans) != len(want) {
		t.Fatalf("replayed %d plans, want %d", len(plans), len(want))
	}
	for i, r := range plans {
		w := want[i]
		if r.N != w.N || r.Slope != w.Slope || r.Stats != w.Stats {
			t.Fatalf("plan %d differs: %+v vs %+v", i, r, w)
		}
		for j := range w.Alloc {
			if r.Alloc[j] != w.Alloc[j] {
				t.Fatalf("plan %d share %d: %d != %d", i, j, r.Alloc[j], w.Alloc[j])
			}
		}
	}
	if len(s2.Hints()) == 0 {
		t.Fatal("no hints derived from replayed plans")
	}
}

func TestCloseSnapshotsAndWALResets(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(7, 42)
	s := mustOpen(t, dir)
	fp, _, err := s.PutModel("m", fns)
	if err != nil {
		t.Fatal(err)
	}
	want := plansFor(t, fp, fns, []int64{300_000, 600_000})
	for _, r := range want {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len(walMagic)) {
		t.Fatalf("WAL not reset after Close: %d bytes", info.Size())
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	st := s2.Stats()
	if !st.LoadedFromSnapshot || st.SnapshotQuarantined {
		t.Fatalf("snapshot not loaded cleanly: %+v", st)
	}
	if st.ReplayedModels != 1 || st.ReplayedPlans != len(want) {
		t.Fatalf("snapshot contents: %+v", st)
	}
	plans := s2.Plans()
	for i, r := range plans {
		for j := range want[i].Alloc {
			if r.Alloc[j] != want[i].Alloc[j] {
				t.Fatalf("plan %d share %d differs after snapshot round trip", i, j)
			}
		}
		if r.Slope != want[i].Slope {
			t.Fatalf("plan %d slope differs after snapshot round trip", i)
		}
	}
}

func TestModelRefreshDropsOldPlans(t *testing.T) {
	dir := t.TempDir()
	fns1 := testModel(5, 50)
	fns2 := testModel(5, 51)
	s := mustOpen(t, dir)
	fp1, _, err := s.PutModel("node", fns1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plansFor(t, fp1, fns1, []int64{200_000}) {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	fp2, replaced, err := s.PutModel("node", fns2)
	if err != nil || !replaced {
		t.Fatalf("refresh: replaced=%v err=%v", replaced, err)
	}
	if fp2 == fp1 {
		t.Fatal("distinct models share a fingerprint")
	}
	if _, ok := s.Model(fp1); ok {
		t.Fatal("stale model survived its refresh")
	}
	if got := s.Plans(); len(got) != 0 {
		t.Fatalf("%d stale plans survived the refresh", len(got))
	}
	if fp, ok := s.ModelByLabel("node"); !ok || fp != fp2 {
		t.Fatalf("label maps to %x, want %x", fp, fp2)
	}
	s.Sync()

	// The refresh must hold across a crash-restart too.
	s2 := mustOpen(t, dir)
	defer s2.Close()
	if _, ok := s2.Model(fp1); ok {
		t.Fatal("stale model resurrected by replay")
	}
	if got := s2.Plans(); len(got) != 0 {
		t.Fatalf("%d stale plans resurrected by replay", len(got))
	}
	if _, ok := s2.Model(fp2); !ok {
		t.Fatal("refreshed model lost in replay")
	}

	// Re-putting an identical model is a no-op, not a refresh.
	if _, replaced, err := s2.PutModel("node", fns2); err != nil || replaced {
		t.Fatalf("idempotent put: replaced=%v err=%v", replaced, err)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(6, 60)
	s := mustOpen(t, dir, Options{CompactAt: 512})
	fp, _, err := s.PutModel("m", fns)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, 40)
	for i := range sizes {
		sizes[i] = int64(100_000 + 10_000*i)
	}
	for _, r := range plansFor(t, fp, fns, sizes) {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction despite tiny CompactAt: %+v", st)
	}
	if st.WALBytes > 1024 {
		t.Fatalf("WAL still large after compaction: %+v", st)
	}
	if st.Plans != len(sizes) {
		t.Fatalf("plans lost across compaction: %+v", st)
	}
	s.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	if got := len(s2.Plans()); got != len(sizes) {
		t.Fatalf("reopened with %d plans, want %d", got, len(sizes))
	}
}

func TestHintSourceFeedsSnapshot(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(4, 70)
	s := mustOpen(t, dir)
	fp, _, err := s.PutModel("m", fns)
	if err != nil {
		t.Fatal(err)
	}
	s.SetHintSource(func() []plancache.HintRecord {
		return []plancache.HintRecord{
			{Model: fp, N: 123_456, Slope: 42.5},
			{Model: 0xdead, N: 1, Slope: 1}, // unknown model: skipped
		}
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	hints := s2.Hints()
	if len(hints) != 1 || hints[0].Model != fp || hints[0].N != 123_456 || hints[0].Slope != 42.5 {
		t.Fatalf("hints after restart: %+v", hints)
	}
}

func TestAppendPlanGuards(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	// Invalid record: refused loudly.
	bad := plancache.PlanRecord{Model: 1, N: 10, Alloc: core.Allocation{4, 7}}
	if err := s.AppendPlan(bad); err == nil {
		t.Fatal("invalid plan accepted")
	}
	// Unknown model: dropped silently (it could never validate on replay).
	ok := plancache.PlanRecord{Model: 1, N: 10, Alloc: core.Allocation{4, 6}, Slope: 1}
	if err := s.AppendPlan(ok); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Plans()); got != 0 {
		t.Fatalf("plan for unknown model stored: %d", got)
	}
}

func TestPlanMirrorBounded(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(3, 80)
	s := mustOpen(t, dir, Options{MaxPlans: 8})
	defer s.Close()
	fp, _, err := s.PutModel("m", fns)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, 20)
	for i := range sizes {
		sizes[i] = int64(100_000 + 5_000*i)
	}
	for _, r := range plansFor(t, fp, fns, sizes) {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	plans := s.Plans()
	if len(plans) != 8 {
		t.Fatalf("mirror holds %d plans, want 8", len(plans))
	}
	// The oldest plans go first: the survivors are the most recent sizes.
	if plans[0].N != sizes[len(sizes)-8] {
		t.Fatalf("wrong eviction order: oldest surviving n=%d", plans[0].N)
	}
}
