package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"heteropart/internal/plancache"
	"heteropart/internal/speed"
)

// driftTail returns a copy of a piecewise linear function whose tail knot
// speed dropped — the shape of real drift (a co-scheduled job eating the
// big-problem regime) that leaves small allocations bit-identical, so a
// selective refresh keeps some plans and drops others.
func driftTail(t *testing.T, f speed.Function) speed.Function {
	t.Helper()
	pwl, ok := f.(*speed.PiecewiseLinear)
	if !ok {
		t.Fatalf("driftTail wants a piecewise linear function, got %T", f)
	}
	pts := append([]speed.Point(nil), pwl.Points()...)
	pts[len(pts)-1].Y *= 0.5
	pts[len(pts)-2].Y *= 0.7
	g, err := speed.NewPiecewiseLinear(speed.EnforceShape(pts))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeltaRefreshLiveAndReplay(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(9, 41)
	// Spans both regimes: small sizes keep every processor far below the
	// drifted tail knots, the billion-element ones land inside them.
	sizes := []int64{50_000, 250_000, 1_000_000, 4_000_000, 500_000_000, 2_000_000_000, 8_000_000_000}
	const proc = 2 // a piecewise linear processor in testModel

	s := mustOpen(t, dir, Options{CompactAt: -1})
	fp, _, err := s.PutModel("clusterA", fns)
	if err != nil {
		t.Fatal(err)
	}
	plans := plansFor(t, fp, fns, sizes)
	for _, r := range plans {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	newFn := driftTail(t, fns[proc])
	oldFP, newFP, err := s.RefreshProcessor("clusterA", proc, newFn)
	if err != nil {
		t.Fatal(err)
	}
	if oldFP != fp || newFP == fp {
		t.Fatalf("RefreshProcessor fingerprints: old=%x new=%x want old=%x new!=old", oldFP, newFP, fp)
	}

	// The selective rule, applied independently of the store, predicts
	// which plans survive; the drift must exercise both outcomes or the
	// test proves nothing.
	wantSurvive := make(map[int64]bool, len(plans))
	nSurvive := 0
	for _, r := range plans {
		ok := plancache.SurvivesProc(r.Alloc[proc], fns[proc], newFn)
		wantSurvive[r.N] = ok
		if ok {
			nSurvive++
		}
	}
	if nSurvive == 0 || nSurvive == len(plans) {
		t.Fatalf("drift scenario is degenerate: %d/%d plans survive", nSurvive, len(plans))
	}

	checkState := func(st *Store, label string) {
		t.Helper()
		if got, ok := st.ModelByLabel("clusterA"); !ok || got != newFP {
			t.Fatalf("%s: label maps to %x (ok=%v), want %x", label, got, ok, newFP)
		}
		if _, ok := st.Model(oldFP); ok {
			t.Fatalf("%s: old model %x still stored", label, oldFP)
		}
		got, ok := st.Model(newFP)
		if !ok {
			t.Fatalf("%s: new model %x missing", label, newFP)
		}
		if speed.Fingerprint(got) != newFP {
			t.Fatalf("%s: stored model does not reproduce its fingerprint", label)
		}
		stored := st.Plans()
		if len(stored) != nSurvive {
			t.Fatalf("%s: %d plans stored, want %d survivors", label, len(stored), nSurvive)
		}
		for _, r := range stored {
			if r.Model != newFP {
				t.Fatalf("%s: plan n=%d still keyed under %x", label, r.N, r.Model)
			}
			if !wantSurvive[r.N] {
				t.Fatalf("%s: plan n=%d survived but the rule says it cannot", label, r.N)
			}
		}
		for _, h := range st.Hints() {
			if h.Model != newFP {
				t.Fatalf("%s: hint n=%d still keyed under %x", label, h.N, h.Model)
			}
		}
	}
	checkState(s, "live")
	if st := s.Stats(); st.Refreshes != 1 {
		t.Fatalf("live Refreshes = %d, want 1", st.Refreshes)
	}
	livePlans := s.Plans()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close — recovery replays the delta record from the WAL.

	s2 := mustOpen(t, dir, Options{CompactAt: -1})
	defer s2.Close()
	checkState(s2, "replayed")
	st := s2.Stats()
	if st.Refreshes != 1 || st.QuarantinedRecords != 0 {
		t.Fatalf("replay stats: %+v", st)
	}
	replayed := s2.Plans()
	for i, r := range replayed {
		want := livePlans[i]
		if r.N != want.N || r.Slope != want.Slope {
			t.Fatalf("replayed plan %d: n=%d slope=%v, want n=%d slope=%v", i, r.N, r.Slope, want.N, want.Slope)
		}
		for j := range r.Alloc {
			if r.Alloc[j] != want.Alloc[j] {
				t.Fatalf("replayed plan n=%d differs from live at proc %d: %d vs %d", r.N, j, r.Alloc[j], want.Alloc[j])
			}
		}
	}
}

func TestDeltaRefreshCompactionFolds(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(9, 83)
	sizes := []int64{100_000, 500_000, 2_000_000}
	const proc = 2

	s := mustOpen(t, dir, Options{CompactAt: -1})
	fp, _, err := s.PutModel("clusterB", fns)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plansFor(t, fp, fns, sizes) {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.RefreshProcessor("clusterB", proc, driftTail(t, fns[proc])); err != nil {
		t.Fatal(err)
	}
	wantPlans, wantModels := s.Plans(), s.Models()
	if err := s.Close(); err != nil { // graceful: folds the delta into the snapshot
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{CompactAt: -1})
	defer s2.Close()
	st := s2.Stats()
	if !st.LoadedFromSnapshot || st.WALBytes != 0 || st.Refreshes != 0 {
		t.Fatalf("after fold: %+v (want snapshot load, empty WAL, no delta replayed)", st)
	}
	if got := s2.Models(); len(got) != len(wantModels) || got[0].Fingerprint != wantModels[0].Fingerprint {
		t.Fatalf("models after fold: %+v, want %+v", got, wantModels)
	}
	got := s2.Plans()
	if len(got) != len(wantPlans) {
		t.Fatalf("%d plans after fold, want %d", len(got), len(wantPlans))
	}
	for i, r := range got {
		for j := range r.Alloc {
			if r.Alloc[j] != wantPlans[i].Alloc[j] {
				t.Fatalf("plan n=%d drifted through compaction at proc %d", r.N, j)
			}
		}
	}
}

func TestDeltaRefreshLyingFingerprintQuarantined(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(9, 59)
	sizes := []int64{100_000, 1_000_000}
	const proc = 2

	s := mustOpen(t, dir, Options{CompactAt: -1})
	fp, _, err := s.PutModel("clusterC", fns)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plansFor(t, fp, fns, sizes) {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Forge a delta whose recorded new fingerprint does not match what
	// patching actually produces, append it past the live store's writes,
	// and crash. Replay must refuse to apply it.
	payload, err := encodeDelta(fp, fp^0xdeadbeef, proc, driftTail(t, fns[proc]))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(f, payload); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, Options{CompactAt: -1})
	defer s2.Close()
	st := s2.Stats()
	if st.QuarantinedRecords != 1 || st.Refreshes != 0 {
		t.Fatalf("lying delta: %+v (want 1 quarantined, 0 refreshes)", st)
	}
	if got, ok := s2.ModelByLabel("clusterC"); !ok || got != fp {
		t.Fatalf("label moved to %x (ok=%v) despite quarantined delta", got, ok)
	}
	if len(s2.Plans()) != len(sizes) {
		t.Fatalf("%d plans after quarantined delta, want %d untouched", len(s2.Plans()), len(sizes))
	}
}

func TestDeltaRefreshWALBytesSmall(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(64, 7)
	const proc = 2

	s := mustOpen(t, dir, Options{CompactAt: -1})
	defer s.Close()
	before := s.Stats().WALBytes
	if _, _, err := s.PutModel("big", fns); err != nil {
		t.Fatal(err)
	}
	modelBytes := s.Stats().WALBytes - before
	before = s.Stats().WALBytes
	if _, _, err := s.RefreshProcessor("big", proc, driftTail(t, fns[proc])); err != nil {
		t.Fatal(err)
	}
	deltaBytes := s.Stats().WALBytes - before
	if deltaBytes <= 0 || modelBytes < 10*deltaBytes {
		t.Fatalf("p=64 delta appended %d bytes vs %d for the full model; want ≥10× smaller", deltaBytes, modelBytes)
	}
}

func TestDeltaRefreshNoOp(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(6, 17)
	s := mustOpen(t, dir, Options{CompactAt: -1})
	defer s.Close()
	fp, _, err := s.PutModel("same", fns)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats().WALBytes
	oldFP, newFP, err := s.RefreshProcessor("same", 1, fns[1])
	if err != nil {
		t.Fatal(err)
	}
	if oldFP != fp || newFP != fp {
		t.Fatalf("no-op refresh moved the fingerprint: %x → %x", oldFP, newFP)
	}
	if st := s.Stats(); st.WALBytes != before || st.Refreshes != 0 {
		t.Fatalf("no-op refresh logged something: %+v", st)
	}
}

// TestDeltaRefreshV1WALUpgrade replays a hand-written previous-format WAL:
// models carry the legacy chained fingerprint, plans are keyed under it.
// Open must alias the legacy fingerprint to the composed one, resolve the
// plans, rewrite both files in the current format, and leave a store that
// delta-refreshes normally.
func TestDeltaRefreshV1WALUpgrade(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(6, 13)
	legacy := speed.FingerprintLegacy(fns)
	canon := speed.Fingerprint(fns)
	if legacy == canon {
		t.Fatal("legacy and composed fingerprints collide; test model is useless")
	}
	sizes := []int64{100_000, 1_000_000}

	var buf bytes.Buffer
	buf.WriteString(walMagicV1)
	mp, err := encodeModel(legacy, "v1cluster", fns)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(&buf, mp); err != nil {
		t.Fatal(err)
	}
	plans := plansFor(t, legacy, fns, sizes)
	for _, r := range plans {
		if _, err := writeFrame(&buf, encodePlan(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir, Options{CompactAt: -1})
	st := s.Stats()
	if st.QuarantinedRecords != 0 || st.ReplayedModels != 1 || st.ReplayedPlans != len(sizes) {
		t.Fatalf("v1 replay: %+v", st)
	}
	if st.Compactions == 0 {
		t.Fatal("v1 store was not compacted to the current format on open")
	}
	if got, ok := s.ModelByLabel("v1cluster"); !ok || got != canon {
		t.Fatalf("label maps to %x (ok=%v), want composed %x", got, ok, canon)
	}
	for _, r := range s.Plans() {
		if r.Model != canon {
			t.Fatalf("plan n=%d keyed under %x, want composed %x", r.N, r.Model, canon)
		}
	}
	// The upgraded store must accept deltas.
	if _, newFP, err := s.RefreshProcessor("v1cluster", 2, driftTail(t, fns[2])); err != nil || newFP == canon {
		t.Fatalf("refresh on upgraded store: fp=%x err=%v", newFP, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Both files are now current-format: a reopen sees no v1 artifacts.
	magic := make([]byte, 8)
	wf, err := os.Open(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Read(magic); err != nil {
		t.Fatal(err)
	}
	wf.Close()
	if string(magic) != walMagic {
		t.Fatalf("WAL magic after upgrade: %q, want %q", magic, walMagic)
	}
	s2 := mustOpen(t, dir)
	defer s2.Close()
	if st := s2.Stats(); !st.LoadedFromSnapshot || st.QuarantinedRecords != 0 {
		t.Fatalf("reopen after upgrade: %+v", st)
	}
}

// TestDeltaRefreshV1SnapshotUpgrade loads a hand-written previous-format
// snapshot (legacy model fingerprint) and checks the same aliasing and
// rewrite happen on the snapshot path.
func TestDeltaRefreshV1SnapshotUpgrade(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(6, 29)
	legacy := speed.FingerprintLegacy(fns)
	canon := speed.Fingerprint(fns)

	var buf bytes.Buffer
	buf.WriteString(snapMagicV1)
	if _, err := writeFrame(&buf, encodeMeta(1, 0)); err != nil {
		t.Fatal(err)
	}
	mp, err := encodeModel(legacy, "v1snap", fns)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(&buf, mp); err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(&buf, encodeSnapEnd(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	defer s.Close()
	st := s.Stats()
	if !st.LoadedFromSnapshot || st.SnapshotQuarantined || st.QuarantinedRecords != 0 {
		t.Fatalf("v1 snapshot load: %+v", st)
	}
	if st.Compactions == 0 {
		t.Fatal("v1 snapshot was not rewritten on open")
	}
	if got, ok := s.ModelByLabel("v1snap"); !ok || got != canon {
		t.Fatalf("label maps to %x (ok=%v), want composed %x", got, ok, canon)
	}
}
