package store

import (
	"os"
	"path/filepath"
	"testing"

	"heteropart/internal/speed"
)

// The corruption suite drives the three failure modes the recovery rules
// must survive: a truncated WAL tail (crash mid-append), a bit-flipped
// snapshot (storage corruption), and a fingerprint-mismatched model record
// (stale or tampered state). In every case the store must come back
// serving only validated plans — degraded is fine, wrong is not.

// seedStore opens a store in dir, registers a model, appends plans for the
// sizes, syncs, and abandons the handle (simulating a crash).
func seedStore(t *testing.T, dir string, sizes []int64) (uint64, []speed.Function) {
	t.Helper()
	fns := testModel(8, 90)
	s := mustOpen(t, dir)
	fp, _, err := s.PutModel("m", fns)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plansFor(t, fp, fns, sizes) {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	return fp, fns
}

func TestTruncatedWALTailRecovers(t *testing.T) {
	dir := t.TempDir()
	sizes := []int64{100_000, 200_000, 300_000, 400_000}
	fp, _ := seedStore(t, dir, sizes)

	// Cut into the last frame, as a crash mid-write(2) would.
	path := filepath.Join(dir, walFile)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	defer s.Close()
	st := s.Stats()
	if st.QuarantinedTail == 0 {
		t.Fatalf("truncated tail not detected: %+v", st)
	}
	// Everything before the cut survives; only the last plan is lost.
	if st.ReplayedPlans != len(sizes)-1 || st.ReplayedModels != 1 {
		t.Fatalf("recovered %d plans, want %d: %+v", st.ReplayedPlans, len(sizes)-1, st)
	}
	// The damaged tail forces an immediate compaction onto a clean base.
	if st.Compactions == 0 {
		t.Fatalf("no compaction after tail quarantine: %+v", st)
	}
	// The store stays writable after recovery.
	fns2, _ := s.Model(fp)
	for _, r := range plansFor(t, fp, fns2, []int64{500_000}) {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Plans()); got != len(sizes) {
		t.Fatalf("%d plans after recovery+append, want %d", got, len(sizes))
	}
}

func TestBitFlippedWALRecordCutsTail(t *testing.T) {
	dir := t.TempDir()
	sizes := []int64{100_000, 200_000, 300_000}
	seedStore(t, dir, sizes)

	// Flip one bit inside a frame payload two thirds into the log: replay
	// must keep everything before it and drop everything after.
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)*2/3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	defer s.Close()
	st := s.Stats()
	if st.QuarantinedTail == 0 {
		t.Fatalf("bit flip not detected: %+v", st)
	}
	if st.ReplayedPlans >= len(sizes) {
		t.Fatalf("all plans survived a mid-log flip: %+v", st)
	}
	// Whatever did survive is fully validated.
	for _, r := range s.Plans() {
		if !r.Valid() {
			t.Fatalf("invalid plan served after recovery: %+v", r)
		}
	}
}

func TestBitFlippedSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(6, 91)
	s := mustOpen(t, dir)
	fp, _, err := s.PutModel("m", fns)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plansFor(t, fp, fns, []int64{100_000, 200_000}) {
		if err := s.AppendPlan(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	st := s2.Stats()
	if !st.SnapshotQuarantined || st.LoadedFromSnapshot {
		t.Fatalf("flipped snapshot not quarantined: %+v", st)
	}
	if st.Models != 0 || st.Plans != 0 {
		t.Fatalf("state served from a corrupt snapshot: %+v", st)
	}
	// The corrupt file is preserved for inspection, never deleted.
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantined snapshot missing: %v", err)
	}
	// And the store starts over cleanly.
	if _, _, err := s2.PutModel("m", fns); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(4, 92)
	s := mustOpen(t, dir)
	if _, _, err := s.PutModel("m", fns); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop off the terminator frame: the snapshot reads cleanly but is
	// provably incomplete, so it must not be trusted.
	path := filepath.Join(dir, snapshotFile)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-23); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	if st := s2.Stats(); !st.SnapshotQuarantined || st.Models != 0 {
		t.Fatalf("truncated snapshot trusted: %+v", st)
	}
}

func TestFingerprintMismatchQuarantinesModel(t *testing.T) {
	dir := t.TempDir()
	// Hand-craft a WAL whose model record lies about its fingerprint —
	// the CRC is fine, but the model does not reproduce the fingerprint
	// its plans were computed against (stale state).
	fns := testModel(5, 93)
	fp := speed.Fingerprint(fns)
	wrong := fp ^ 0xdeadbeef
	modelPayload, err := encodeModel(wrong, "m", fns)
	if err != nil {
		t.Fatal(err)
	}
	plan := plansFor(t, wrong, fns, []int64{100_000})[0]

	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(f, modelPayload); err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(f, encodePlan(plan)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	defer s.Close()
	st := s.Stats()
	// Both records quarantined: the lying model, and the plan that then
	// has no model to validate against.
	if st.QuarantinedRecords != 2 {
		t.Fatalf("quarantined %d records, want 2: %+v", st.QuarantinedRecords, st)
	}
	if st.Models != 0 || st.Plans != 0 {
		t.Fatalf("mismatched model or its plan served: %+v", st)
	}
	if _, ok := s.Model(wrong); ok {
		t.Fatal("fingerprint-mismatched model resurfaced")
	}
}

func TestInvalidPlanPayloadQuarantined(t *testing.T) {
	dir := t.TempDir()
	fns := testModel(4, 94)
	fp := speed.Fingerprint(fns)
	modelPayload, err := encodeModel(fp, "m", fns)
	if err != nil {
		t.Fatal(err)
	}
	// A plan whose shares do not sum to n: CRC-clean, semantically wrong.
	bad := plansFor(t, fp, fns, []int64{100_000})[0]
	bad.Alloc[0]++

	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(f, modelPayload); err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(f, encodePlan(bad)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	defer s.Close()
	st := s.Stats()
	if st.ReplayedModels != 1 || st.QuarantinedRecords != 1 || st.Plans != 0 {
		t.Fatalf("invalid plan not quarantined: %+v", st)
	}
}

func TestUnrecognizedWALQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	defer s.Close()
	if st := s.Stats(); st.QuarantinedTail == 0 {
		t.Fatalf("foreign WAL accepted: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, walFile+".corrupt")); err != nil {
		t.Fatalf("foreign WAL not preserved: %v", err)
	}
}
