package store

import (
	"fmt"
	"sync"

	"heteropart/internal/plancache"
)

// Committer coalesces concurrent AppendPlan calls into group commits.
// While one batch is inside the store writing its frames, later arrivals
// join a forming batch and land together through AppendPlanBatch — one
// lock acquisition and one kernel write for the whole group — when the
// current leader hands over. A lone caller commits alone (a batch of
// one), so coalescing never trades latency for throughput: it only kicks
// in when there is actual contention to absorb.
//
// Durability semantics are exactly Store.AppendPlan's: the call returns
// after its record has reached the kernel, and the store's SyncEvery
// fsync cadence counts every record in the group.
type Committer struct {
	st *Store

	mu   sync.Mutex
	cond *sync.Cond
	cur  *commitBatch // batch currently forming; nil until a record arrives
	busy bool         // a leader is inside AppendPlanBatch
}

// commitBatch is one forming group: the first record's caller leads it,
// everyone else waits on done and shares the batch's error.
type commitBatch struct {
	recs []plancache.PlanRecord
	done chan struct{}
	err  error
}

// NewCommitter wraps st with a group-commit front. The store itself is
// untouched — callers that want per-record writes keep using AppendPlan
// directly.
func NewCommitter(st *Store) *Committer {
	c := &Committer{st: st}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// AppendPlan queues one admitted plan and returns once the record's group
// has committed to the WAL. The first caller into a forming batch becomes
// its leader: it waits for any in-flight batch to clear (new arrivals
// keep joining meanwhile), detaches the group, and commits it in one
// AppendPlanBatch call. A batch-wide failure (sealed, closed, write
// error) is reported to every member — each would have hit the same
// error committing alone.
func (c *Committer) AppendPlan(r plancache.PlanRecord) error {
	if !r.Valid() {
		return fmt.Errorf("store: invalid plan record (n=%d, %d shares)", r.N, len(r.Alloc))
	}
	c.mu.Lock()
	if c.cur == nil {
		c.cur = &commitBatch{done: make(chan struct{})}
	}
	b := c.cur
	leader := len(b.recs) == 0
	b.recs = append(b.recs, r)
	if !leader {
		c.mu.Unlock()
		<-b.done
		return b.err
	}
	for c.busy {
		c.cond.Wait()
	}
	// Leadership: detach the batch — everything that joined while we
	// waited commits with us; later arrivals form the next batch.
	c.cur = nil
	c.busy = true
	c.mu.Unlock()
	b.err = c.st.AppendPlanBatch(b.recs)
	close(b.done)
	c.mu.Lock()
	c.busy = false
	c.cond.Signal()
	c.mu.Unlock()
	return b.err
}
