package store

import (
	"errors"
	"testing"

	"heteropart/internal/core"
	"heteropart/internal/plancache"
)

// TestSealFencesMutators: a sealed store refuses every mutator with
// ErrSealed, its replication position is frozen at what Seal returned, and
// Unseal restores normal service.
func TestSealFencesMutators(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	fns := testModel(3, 1)
	fp, _, err := s.PutModel("m", fns)
	if err != nil {
		t.Fatal(err)
	}

	sealed := s.Seal()
	if got := s.ReplicationPos(); got != sealed {
		t.Fatalf("position moved after Seal: %+v != %+v", got, sealed)
	}
	if !s.Stats().Sealed {
		t.Fatal("Stats.Sealed = false after Seal")
	}

	if _, _, err := s.PutModel("m2", testModel(2, 2)); !errors.Is(err, ErrSealed) {
		t.Errorf("PutModel under seal: %v, want ErrSealed", err)
	}
	if _, _, err := s.RefreshProcessor("m", 0, testModel(1, 9)[0]); !errors.Is(err, ErrSealed) {
		t.Errorf("RefreshProcessor under seal: %v, want ErrSealed", err)
	}
	plan := plancache.PlanRecord{Model: fp, N: 64, Alloc: core.Allocation{22, 21, 21}, Slope: 1}
	if err := s.AppendPlan(plan); !errors.Is(err, ErrSealed) {
		t.Errorf("AppendPlan under seal: %v, want ErrSealed", err)
	}
	if err := s.AppendInvalidate(fp); !errors.Is(err, ErrSealed) {
		t.Errorf("AppendInvalidate under seal: %v, want ErrSealed", err)
	}
	if got := s.ReplicationPos(); got != sealed {
		t.Fatalf("refused mutators moved the position: %+v != %+v", got, sealed)
	}

	s.Unseal()
	if s.Stats().Sealed {
		t.Fatal("Stats.Sealed = true after Unseal")
	}
	if err := s.AppendPlan(plan); err != nil {
		t.Fatalf("AppendPlan after Unseal: %v", err)
	}
	if got := s.ReplicationPos(); got.Offset <= sealed.Offset {
		t.Fatalf("position did not advance after Unseal: %+v", got)
	}
}

// TestSealClearedByPromoteAndHandoff: the two legitimate exits from a seal
// — taking over (Promote) and stepping down (ApplyHandoff from the new
// primary) — both lift it without an explicit Unseal.
func TestSealClearedByPromoteAndHandoff(t *testing.T) {
	t.Run("promote", func(t *testing.T) {
		s := mustOpen(t, t.TempDir())
		defer s.Close()
		if _, _, err := s.PutModel("m", testModel(3, 1)); err != nil {
			t.Fatal(err)
		}
		s.Seal()
		if _, err := s.Promote(); err != nil {
			t.Fatalf("Promote under seal: %v", err)
		}
		if s.Stats().Sealed {
			t.Fatal("Promote left the store sealed")
		}
		if _, _, err := s.PutModel("m2", testModel(2, 2)); err != nil {
			t.Fatalf("PutModel after Promote: %v", err)
		}
	})
	t.Run("handoff", func(t *testing.T) {
		primary := mustOpen(t, t.TempDir())
		defer primary.Close()
		if _, err := primary.Promote(); err != nil { // epoch 2 > follower's 1
			t.Fatal(err)
		}
		if _, _, err := primary.PutModel("m", testModel(3, 1)); err != nil {
			t.Fatal(err)
		}
		snap, _, err := primary.HandoffSnapshot()
		if err != nil {
			t.Fatal(err)
		}

		old := mustOpen(t, t.TempDir())
		defer old.Close()
		old.Seal()
		if _, err := old.ApplyHandoff(snap); err != nil {
			t.Fatalf("ApplyHandoff under seal: %v", err)
		}
		if old.Stats().Sealed {
			t.Fatal("ApplyHandoff left the store sealed")
		}
	})
}
