// Package store is the crash-safe persistence layer under the partition
// serving stack: speed models and the plan cache's contents (plans + warm
// index) survive process restarts, so a rebooted server answers its first
// requests from a warm cache instead of recomputing every plan.
//
// Durability follows the classic snapshot + write-ahead-log pattern:
//
//   - a versioned binary snapshot holds the full state (models, plans,
//     warm hints) in CRC-checked frames, written to a temp file and
//     renamed into place, so a crash mid-snapshot never destroys the
//     previous one;
//   - an append-only WAL records what happens between snapshots — model
//     upserts, admitted plan insertions (the cache's insert tap), and
//     drift invalidations — each record framed and CRC-checked, written
//     with a single write(2) call so a SIGKILL leaves at most one partial
//     frame at the tail;
//   - replay-on-open loads the snapshot, applies the WAL on top, and
//     validates everything: models must reproduce their recorded
//     speed.Fingerprint, plans must reference a known model and sum
//     exactly to their n. Anything that fails is quarantined (counted and
//     dropped, corrupt files renamed aside) — a wrong plan is never
//     served;
//   - compaction folds the WAL into a fresh snapshot whenever it outgrows
//     Options.CompactAt, and Close writes a final snapshot so a graceful
//     shutdown restarts with an empty log.
//
// The store is single-process, single-writer; all methods are safe for
// concurrent use within that process.
package store

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"heteropart/internal/core"
	"heteropart/internal/fabric"
	"heteropart/internal/plancache"
	"heteropart/internal/speed"
)

// File names inside the store directory.
const (
	snapshotFile = "snapshot.bin"
	snapshotTmp  = "snapshot.tmp"
	walFile      = "wal.log"
)

// 8-byte magics versioning the two file formats. v2 (delta refresh)
// changed the model fingerprint scheme to the compositional one and added
// the recModelDelta record. v3 (tenancy) made every stored label
// tenant-qualified: replay canonicalizes untenanted labels into the
// default tenant (fabric.CanonicalLabel). Older files are still read —
// v1 models are accepted under the legacy fingerprint and aliased to the
// composed one — and Open compacts immediately so both files are
// rewritten in the current format with canonical labels.
const (
	snapMagic   = "HPSNAP3\n"
	walMagic    = "HPWAL03\n"
	snapMagicV2 = "HPSNAP2\n"
	walMagicV2  = "HPWAL02\n"
	snapMagicV1 = "HPSNAP1\n"
	walMagicV1  = "HPWAL01\n"
)

// Options tunes a Store.
type Options struct {
	// Dir is the store directory (created if missing). Required.
	Dir string
	// CompactAt triggers snapshot compaction when the WAL exceeds this
	// many bytes (default 4 MiB; <0 disables automatic compaction).
	CompactAt int64
	// SyncEvery fsyncs the WAL every N appended records (default 64;
	// 1 syncs on every append). Appends always reach the kernel
	// immediately — a process crash loses nothing, only a machine crash
	// can lose the records appended since the last sync.
	SyncEvery int
	// MaxPlans bounds the plan mirror (default 16384); the oldest plans
	// are dropped first, mirroring LRU pressure in the cache.
	MaxPlans int
}

func (o Options) withDefaults() Options {
	if o.CompactAt == 0 {
		o.CompactAt = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.MaxPlans <= 0 {
		o.MaxPlans = 16384
	}
	return o
}

// Stats is a snapshot of the store counters.
type Stats struct {
	Models int `json:"models"`
	Plans  int `json:"plans"`
	Hints  int `json:"hints"`

	WALRecords  uint64 `json:"walRecords"`  // records appended this run
	WALBytes    int64  `json:"walBytes"`    // current WAL size past the header
	WALFrames   int64  `json:"walFrames"`   // frames in the WAL this generation
	Compactions uint64 `json:"compactions"` // snapshots written this run

	Epoch uint64 `json:"epoch"` // replication fencing epoch
	Gen   uint64 `json:"gen"`   // compaction generation (WAL stream identity)

	// Refreshes counts one-processor delta refreshes applied this run —
	// live RefreshProcessor calls plus replayed or streamed delta records.
	Refreshes uint64 `json:"refreshes"`

	ReplayedModels int `json:"replayedModels"` // records applied on Open
	ReplayedPlans  int `json:"replayedPlans"`
	ReplayedHints  int `json:"replayedHints"`

	Sealed bool `json:"sealed"` // mutators fenced off for a planned handover

	QuarantinedRecords  int   `json:"quarantinedRecords"`  // records dropped by validation
	QuarantinedTail     int64 `json:"quarantinedTail"`     // WAL bytes cut off a corrupt tail
	SnapshotQuarantined bool  `json:"snapshotQuarantined"` // snapshot failed its checks and was set aside
	LoadedFromSnapshot  bool  `json:"loadedFromSnapshot"`

	// SyncEvery is the effective fsync cadence (records per fsync).
	SyncEvery int `json:"syncEvery"`

	// Group-commit counters: GroupCommits is the number of AppendPlanBatch
	// calls (each one lock acquisition and at most one kernel write),
	// GroupedRecords the plan records they carried, and GroupCommitHist a
	// batch-size histogram with power-of-two buckets
	// [1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65+].
	GroupCommits    uint64    `json:"groupCommits"`
	GroupedRecords  uint64    `json:"groupedRecords"`
	GroupCommitHist [8]uint64 `json:"groupCommitHist"`
}

// ModelInfo describes one stored model.
type ModelInfo struct {
	Fingerprint uint64
	Label       string
	Processors  int
}

type modelEntry struct {
	label string
	fns   []speed.Function
}

type planKey struct {
	model uint64
	n     int64
	algo  core.Algorithm
	opts  uint64
}

type hintKey struct {
	model uint64
	n     int64
}

// Store is the durable model/plan store. Construct with Open; Close writes
// the final snapshot.
type Store struct {
	mu   sync.Mutex
	opts Options

	models map[uint64]*modelEntry
	labels map[string]uint64

	// fpAlias maps a legacy (format v1, chained-FNV) model fingerprint to
	// the composed fingerprint the same functions hash to today. Replay
	// populates it when it accepts a v1 model record; the plan, hint,
	// invalidation and delta records that follow resolve through it.
	fpAlias map[uint64]uint64

	plans     map[planKey]plancache.PlanRecord
	planOrder []planKey
	hints     map[hintKey]float64

	// hintSource, when set, supplies the warm index at snapshot time
	// (wired to the live cache's Export); nil falls back to the mirror.
	hintSource func() []plancache.HintRecord

	wal       *os.File
	walBytes  int64
	unsynced  int
	walTotal  uint64
	compacted uint64

	// Group-commit counters (see Stats).
	groupCommits uint64
	groupedRecs  uint64
	groupHist    [8]uint64

	// Replication state (see replication.go). epoch fences a promoted
	// replica against a zombie primary; gen identifies the WAL stream a
	// byte offset is valid in (each compaction starts a new one);
	// walFrames counts the frames in the current generation; tornBytes
	// are ingested stream bytes past the last complete frame, kept on
	// disk so a promotion seals them off exactly like boot-time replay;
	// pins defers automatic compaction during snapshot handoffs; notify
	// is closed and replaced on every append (and compaction) so WAL
	// streamers can long-poll.
	epoch     uint64
	gen       uint64
	walFrames int64
	tornBytes int64
	pins      int
	notify    chan struct{}

	replayedModels, replayedPlans, replayedHints int
	refreshes                                    uint64
	quarantined                                  int
	quarantinedTail                              int64
	snapQuarantined                              bool
	loadedSnapshot                               bool
	// upgradeOld is set when an older-format (v1 or v2) snapshot or WAL
	// was read; Open compacts immediately so both files are rewritten in
	// the current format.
	upgradeOld bool

	// sealed freezes the committed log end for a planned handover: mutators
	// refuse with ErrSealed so the position returned by Seal stays the final
	// word of this primacy. Cleared by Unseal, by Promote, and by
	// ApplyHandoff (the demoted store re-enters life as a follower).
	sealed bool

	closed bool
}

// Open loads (or creates) the store in opts.Dir: snapshot first, WAL
// replayed on top, corruption quarantined, and the WAL compacted into a
// fresh snapshot when it is oversized or had a damaged tail.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		opts:    opts,
		models:  make(map[uint64]*modelEntry),
		labels:  make(map[string]uint64),
		fpAlias: make(map[uint64]uint64),
		plans:   make(map[planKey]plancache.PlanRecord),
		hints:   make(map[hintKey]float64),
		epoch:   1,
		notify:  make(chan struct{}),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	// A damaged tail, an oversized log or an old-format file folds into a
	// fresh snapshot now, so the next crash replays from a clean base (and
	// a v1 store is rewritten as v2 exactly once).
	if s.quarantinedTail > 0 || s.upgradeOld || (s.opts.CompactAt > 0 && s.walBytes > s.opts.CompactAt) {
		if err := s.compactLocked(); err != nil {
			s.wal.Close()
			return nil, err
		}
	}
	return s, nil
}

// SetHintSource installs the warm-index supplier consulted at snapshot
// time (typically the live cache's Export). Call before serving traffic.
func (s *Store) SetHintSource(fn func() []plancache.HintRecord) {
	s.mu.Lock()
	s.hintSource = fn
	s.mu.Unlock()
}

// PutModel registers (or refreshes) a labeled model and logs it to the
// WAL. When the label previously mapped to a different model, the old
// model's plans and hints are dropped and an invalidation is logged — the
// durable form of a drift refresh. It returns the model's fingerprint and
// whether an older model was replaced.
func (s *Store) PutModel(label string, fns []speed.Function) (uint64, bool, error) {
	if len(fns) == 0 {
		return 0, false, fmt.Errorf("store: empty model")
	}
	if label == "" {
		return 0, false, fmt.Errorf("store: empty model label")
	}
	// Labels are stored tenant-qualified; bare names belong to the
	// default tenant. Canonicalize before encoding so the WAL record
	// already carries the canonical spelling.
	label = fabric.CanonicalLabel(label)
	payload, fp, err := encodeModelChecked(label, fns)
	if err != nil {
		return 0, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, false, fmt.Errorf("store: closed")
	}
	if s.sealed {
		return 0, false, ErrSealed
	}
	old, replaced := s.labels[label]
	if replaced && old == fp {
		// Same label, same model: nothing to refresh.
		return fp, false, nil
	}
	if err := s.appendLocked(payload); err != nil {
		return 0, false, err
	}
	if replaced {
		if err := s.appendLocked(encodeInvalidate(old)); err != nil {
			return 0, false, err
		}
		s.dropModelState(old)
	}
	s.models[fp] = &modelEntry{label: label, fns: append([]speed.Function(nil), fns...)}
	s.labels[label] = fp
	return fp, replaced, nil
}

// encodeModelChecked fingerprints fns and encodes the model record.
func encodeModelChecked(label string, fns []speed.Function) ([]byte, uint64, error) {
	fp := speed.Fingerprint(fns)
	payload, err := encodeModel(fp, label, fns)
	if err != nil {
		return nil, 0, err
	}
	return payload, fp, nil
}

// RefreshProcessor replaces one processor's speed function in the model a
// label maps to, appending an O(one processor) delta record to the WAL
// instead of a full model record. The stored plans for the model are
// migrated by the same selective rule the plan cache uses
// (plancache.SurvivesProc): plans whose allocation provably cannot change
// are re-keyed to the new fingerprint, the rest are dropped — no
// per-survivor records are written, because every replayer re-derives the
// same split deterministically from the delta alone. Returns the old and
// new composed fingerprints; they are equal when the replacement function
// fingerprints identically to the current one (a no-op, nothing logged).
func (s *Store) RefreshProcessor(label string, proc int, fn speed.Function) (oldFP, newFP uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, fmt.Errorf("store: closed")
	}
	if s.sealed {
		return 0, 0, ErrSealed
	}
	label = fabric.CanonicalLabel(label)
	fp, ok := s.labels[label]
	if !ok {
		return 0, 0, fmt.Errorf("store: no model labeled %q", label)
	}
	m := s.models[fp]
	if proc < 0 || proc >= len(m.fns) {
		return 0, 0, fmt.Errorf("store: model %q has %d processors, refresh asked for index %d", label, len(m.fns), proc)
	}
	newFns := make([]speed.Function, len(m.fns))
	copy(newFns, m.fns)
	newFns[proc] = fn
	newFP = speed.Fingerprint(newFns)
	if newFP == fp {
		return fp, fp, nil
	}
	payload, err := encodeDelta(fp, newFP, proc, fn)
	if err != nil {
		return 0, 0, err
	}
	if err := s.appendLocked(payload); err != nil {
		return 0, 0, err
	}
	s.refreshStateLocked(fp, newFP, proc, newFns)
	s.refreshes++
	s.maybeCompactLocked()
	return fp, newFP, nil
}

// refreshStateLocked applies a validated one-processor refresh to the
// in-memory mirror: the model moves to its new fingerprint, the label
// follows, and plans/hints re-key or drop per the selective rule. Shared
// by the live RefreshProcessor and delta-record replay, so disk replay and
// the live path converge on identical state.
func (s *Store) refreshStateLocked(oldFP, newFP uint64, proc int, newFns []speed.Function) {
	m := s.models[oldFP]
	oldFn := m.fns[proc]
	delete(s.models, oldFP)
	s.models[newFP] = &modelEntry{label: m.label, fns: newFns}
	if s.labels[m.label] == oldFP {
		s.labels[m.label] = newFP
	}

	kept := s.planOrder[:0]
	for _, k := range s.planOrder {
		if k.model != oldFP {
			kept = append(kept, k)
			continue
		}
		r := s.plans[k]
		delete(s.plans, k)
		if len(r.Alloc) != len(newFns) || !plancache.SurvivesProc(r.Alloc[proc], oldFn, newFns[proc]) {
			continue
		}
		nk := k
		nk.model = newFP
		if _, dup := s.plans[nk]; dup {
			continue // a plan under the new fingerprint already exists
		}
		r.Model = newFP
		s.plans[nk] = r
		kept = append(kept, nk)
	}
	s.planOrder = kept

	for k, slope := range s.hints {
		if k.model == oldFP {
			delete(s.hints, k)
			s.hints[hintKey{model: newFP, n: k.n}] = slope
		}
	}
}

// applyDelta validates and applies a replayed delta record: the referenced
// model must exist (after legacy aliasing), the processor index must be in
// range, and patching the function must reproduce the recorded composed
// fingerprint — a delta whose fingerprint lies is quarantined, never
// applied. Returns the resolved old fingerprint for stream capture.
func (s *Store) applyDelta(oldFP, newFP uint64, proc int, fn speed.Function) (uint64, bool) {
	oldFP = s.resolveFP(oldFP)
	m, ok := s.models[oldFP]
	if !ok || proc < 0 || proc >= len(m.fns) {
		s.quarantined++
		return 0, false
	}
	newFns := make([]speed.Function, len(m.fns))
	copy(newFns, m.fns)
	newFns[proc] = fn
	if speed.Fingerprint(newFns) != newFP {
		s.quarantined++
		return 0, false
	}
	if newFP != oldFP {
		s.refreshStateLocked(oldFP, newFP, proc, newFns)
	}
	s.refreshes++
	return oldFP, true
}

// resolveFP maps a legacy model fingerprint to its composed equivalent;
// current-format fingerprints pass through unchanged.
func (s *Store) resolveFP(fp uint64) uint64 {
	if canon, ok := s.fpAlias[fp]; ok {
		return canon
	}
	return fp
}

// AppendPlan logs one admitted plan insertion (the cache's insert tap).
// Plans for models the store does not know are dropped silently — they
// could not be validated on replay anyway.
func (s *Store) AppendPlan(r plancache.PlanRecord) error {
	if !r.Valid() {
		return fmt.Errorf("store: invalid plan record (n=%d, %d shares)", r.N, len(r.Alloc))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.sealed {
		return ErrSealed
	}
	if _, ok := s.models[r.Model]; !ok {
		return nil
	}
	if err := s.appendLocked(encodePlan(r)); err != nil {
		return err
	}
	s.putPlanLocked(r)
	s.maybeCompactLocked()
	return nil
}

// AppendPlanBatch logs several admitted plans under one lock acquisition
// and a single kernel write: the frames are concatenated and written
// together, so a group of concurrent inserts costs one write(2) instead of
// one per record. Durability is unchanged — the batch reaches the kernel
// before the call returns, and the SyncEvery fsync cadence counts every
// record in the batch. Records for unknown models are dropped silently,
// exactly as AppendPlan drops them; an invalid record fails the whole
// batch before anything is written.
func (s *Store) AppendPlanBatch(rs []plancache.PlanRecord) error {
	for i := range rs {
		if !rs[i].Valid() {
			return fmt.Errorf("store: invalid plan record (n=%d, %d shares)", rs[i].N, len(rs[i].Alloc))
		}
	}
	if len(rs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.sealed {
		return ErrSealed
	}
	s.groupCommits++
	s.groupHist[commitBucket(len(rs))]++
	var buf []byte
	kept := rs[:0:0]
	for _, r := range rs {
		if _, ok := s.models[r.Model]; !ok {
			continue
		}
		buf = appendFrame(buf, encodePlan(r))
		kept = append(kept, r)
	}
	if len(kept) == 0 {
		return nil
	}
	n, err := s.wal.Write(buf)
	s.walBytes += int64(n)
	if err != nil {
		return fmt.Errorf("store: WAL append: %w", err)
	}
	s.walTotal += uint64(len(kept))
	s.walFrames += int64(len(kept))
	s.groupedRecs += uint64(len(kept))
	s.unsynced += len(kept)
	s.notifyLocked()
	if s.unsynced >= s.opts.SyncEvery {
		s.unsynced = 0
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: WAL sync: %w", err)
		}
	}
	for _, r := range kept {
		s.putPlanLocked(r)
	}
	s.maybeCompactLocked()
	return nil
}

// commitBucket maps a batch size onto its power-of-two histogram bucket:
// 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65+.
func commitBucket(n int) int {
	b := bits.Len(uint(n - 1))
	if b > 7 {
		return 7
	}
	return b
}

// AppendInvalidate logs a drift invalidation: every stored plan and hint
// for the model is dropped. The model itself stays registered until a
// refresh replaces it.
func (s *Store) AppendInvalidate(model uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.sealed {
		return ErrSealed
	}
	if err := s.appendLocked(encodeInvalidate(model)); err != nil {
		return err
	}
	s.dropPlansLocked(model)
	s.maybeCompactLocked()
	return nil
}

// Model returns the speed functions of a stored model.
func (s *Store) Model(fp uint64) ([]speed.Function, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[fp]
	if !ok {
		return nil, false
	}
	return append([]speed.Function(nil), m.fns...), true
}

// ModelByLabel returns the fingerprint a label currently maps to. Bare
// and default-qualified spellings resolve identically.
func (s *Store) ModelByLabel(label string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp, ok := s.labels[fabric.CanonicalLabel(label)]
	return fp, ok
}

// Models lists the stored models, sorted by label then fingerprint.
func (s *Store) Models() []ModelInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ModelInfo, 0, len(s.models))
	for fp, m := range s.models {
		out = append(out, ModelInfo{Fingerprint: fp, Label: m.label, Processors: len(m.fns)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Plans returns the stored plans in insertion order, ready for
// plancache.Import.
func (s *Store) Plans() []plancache.PlanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]plancache.PlanRecord, 0, len(s.plans))
	for _, k := range s.planOrder {
		if r, ok := s.plans[k]; ok {
			r.Alloc = append(core.Allocation(nil), r.Alloc...)
			out = append(out, r)
		}
	}
	return out
}

// Hints returns the stored warm-start hints.
func (s *Store) Hints() []plancache.HintRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hintsLocked()
}

func (s *Store) hintsLocked() []plancache.HintRecord {
	out := make([]plancache.HintRecord, 0, len(s.hints))
	for k, slope := range s.hints {
		out = append(out, plancache.HintRecord{Model: k.model, N: k.n, Slope: slope})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		return out[i].N < out[j].N
	})
	return out
}

// Sync forces the WAL to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.wal == nil {
		return nil
	}
	s.unsynced = 0
	return s.wal.Sync()
}

// Snapshot writes a full snapshot and resets the WAL.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

// Close writes a final snapshot (the graceful-drain path: the WAL is
// flushed into it) and releases the files. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.compactLocked()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.closed = true
	return err
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Models:              len(s.models),
		Plans:               len(s.plans),
		Hints:               len(s.hints),
		WALRecords:          s.walTotal,
		WALBytes:            s.walBytes,
		WALFrames:           s.walFrames,
		Compactions:         s.compacted,
		Epoch:               s.epoch,
		Gen:                 s.gen,
		Refreshes:           s.refreshes,
		Sealed:              s.sealed,
		ReplayedModels:      s.replayedModels,
		ReplayedPlans:       s.replayedPlans,
		ReplayedHints:       s.replayedHints,
		QuarantinedRecords:  s.quarantined,
		QuarantinedTail:     s.quarantinedTail,
		SnapshotQuarantined: s.snapQuarantined,
		LoadedFromSnapshot:  s.loadedSnapshot,
		SyncEvery:           s.opts.SyncEvery,
		GroupCommits:        s.groupCommits,
		GroupedRecords:      s.groupedRecs,
		GroupCommitHist:     s.groupHist,
	}
}

// --- in-memory state transitions (callers hold mu) ---

// putPlanLocked installs a plan in the mirror, FIFO-bounded.
func (s *Store) putPlanLocked(r plancache.PlanRecord) {
	k := planKey{model: r.Model, n: r.N, algo: r.Algo, opts: r.OptsKey}
	if _, exists := s.plans[k]; !exists {
		s.planOrder = append(s.planOrder, k)
	}
	s.plans[k] = r
	s.hints[hintKey{model: r.Model, n: r.N}] = r.Slope
	for len(s.plans) > s.opts.MaxPlans && len(s.planOrder) > 0 {
		oldest := s.planOrder[0]
		s.planOrder = s.planOrder[1:]
		delete(s.plans, oldest)
	}
}

// dropPlansLocked removes every plan and hint derived from a model.
func (s *Store) dropPlansLocked(model uint64) {
	kept := s.planOrder[:0]
	for _, k := range s.planOrder {
		if k.model == model {
			delete(s.plans, k)
		} else {
			kept = append(kept, k)
		}
	}
	s.planOrder = kept
	for k := range s.hints {
		if k.model == model {
			delete(s.hints, k)
		}
	}
}

// dropModelState removes a model and everything derived from it.
func (s *Store) dropModelState(model uint64) {
	if m, ok := s.models[model]; ok {
		if s.labels[m.label] == model {
			delete(s.labels, m.label)
		}
		delete(s.models, model)
	}
	s.dropPlansLocked(model)
}

// --- replay validation (shared by snapshot load and WAL replay) ---

// applyModel validates and installs a replayed model record: the decoded
// functions must reproduce the recorded fingerprint — composed (current
// format) or legacy chained (format v1) — else the record is quarantined
// (a stale or corrupted model must never validate plans). A legacy match
// installs the model under its composed fingerprint and records the alias
// so the records that follow resolve. Returns the canonical fingerprint
// the model was installed under.
func (s *Store) applyModel(fp uint64, label string, fns []speed.Function) (uint64, string, bool) {
	canon := speed.Fingerprint(fns)
	if label == "" || (fp != canon && speed.FingerprintLegacy(fns) != fp) {
		s.quarantined++
		return 0, "", false
	}
	// Pre-v3 records carry untenanted labels; fold them into the default
	// tenant so one in-memory key space serves both spellings. After the
	// empty check — canonicalizing "" would fabricate "default/".
	label = fabric.CanonicalLabel(label)
	if fp != canon {
		s.fpAlias[fp] = canon
	}
	if old, ok := s.labels[label]; ok && old != canon {
		s.dropModelState(old)
	}
	s.models[canon] = &modelEntry{label: label, fns: fns}
	s.labels[label] = canon
	s.replayedModels++
	return canon, label, true
}

// applyPlan validates and installs a replayed plan record.
func (s *Store) applyPlan(r plancache.PlanRecord) bool {
	r.Model = s.resolveFP(r.Model)
	m, ok := s.models[r.Model]
	if !ok || !r.Valid() || len(r.Alloc) != len(m.fns) {
		s.quarantined++
		return false
	}
	s.putPlanLocked(r)
	s.replayedPlans++
	return true
}

// applyHint validates and installs a replayed warm hint.
func (s *Store) applyHint(h plancache.HintRecord) bool {
	h.Model = s.resolveFP(h.Model)
	if _, ok := s.models[h.Model]; !ok || h.N <= 0 || !(h.Slope > 0) {
		s.quarantined++
		return false
	}
	s.hints[hintKey{model: h.Model, n: h.N}] = h.Slope
	s.replayedHints++
	return true
}

// applyRecord dispatches one replayed payload, through the exact same
// validation whether it came from the local snapshot, the local WAL, or a
// replication stream. Unknown record types are quarantined, not fatal — a
// newer writer's records degrade gracefully. When cap is non-nil, every
// record that validated and was installed is also captured there, so a
// replica can mirror the change into its live cache and model registry.
func (s *Store) applyRecord(payload []byte, cap *Replicated) {
	d := &decoder{buf: payload}
	switch d.u8() {
	case recModel:
		fp, label, fns, err := decodeModel(d)
		if err != nil || !d.done() {
			s.quarantined++
			return
		}
		if canon, canonLabel, ok := s.applyModel(fp, label, fns); ok && cap != nil {
			cap.Models = append(cap.Models, ReplModel{Fingerprint: canon, Label: canonLabel, Fns: fns})
		}
	case recPlan:
		r, err := decodePlan(d)
		if err != nil || !d.done() {
			s.quarantined++
			return
		}
		r.Model = s.resolveFP(r.Model)
		if s.applyPlan(r) && cap != nil {
			cap.Plans = append(cap.Plans, r)
		}
	case recHint:
		h, err := decodeHint(d)
		if err != nil || !d.done() {
			s.quarantined++
			return
		}
		h.Model = s.resolveFP(h.Model)
		if s.applyHint(h) && cap != nil {
			cap.Hints = append(cap.Hints, h)
		}
	case recInvalidate:
		model, err := decodeInvalidate(d)
		if err != nil || !d.done() {
			s.quarantined++
			return
		}
		model = s.resolveFP(model)
		s.dropPlansLocked(model)
		if cap != nil {
			cap.Invalidated = append(cap.Invalidated, model)
		}
	case recModelDelta:
		oldFP, newFP, proc, fn, err := decodeDelta(d)
		if err != nil || !d.done() {
			s.quarantined++
			return
		}
		if resolved, ok := s.applyDelta(oldFP, newFP, proc, fn); ok && cap != nil {
			cap.Deltas = append(cap.Deltas, ReplDelta{OldFP: resolved, NewFP: newFP, Proc: proc, Fn: fn})
		}
	case recMeta:
		epoch, gen, err := decodeMeta(d)
		if err != nil || !d.done() {
			s.quarantined++
			return
		}
		// Meta never regresses the epoch: a replayed or streamed record
		// from before a promotion must not undo the fence.
		if epoch > s.epoch {
			s.epoch = epoch
		}
		if gen > s.gen {
			s.gen = gen
		}
	default:
		s.quarantined++
	}
}

// --- WAL ---

// openWAL opens (creating if needed) and replays the log.
func (s *Store) openWAL() error {
	path := filepath.Join(s.opts.Dir, walFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		s.wal = f
		return nil
	}
	var magic [8]byte
	_, magicErr := io.ReadFull(f, magic[:])
	switch {
	case magicErr == nil && string(magic[:]) == walMagic:
	case magicErr == nil && (string(magic[:]) == walMagicV1 || string(magic[:]) == walMagicV2):
		// Older-format log: records decode identically; v1 models carry
		// legacy fingerprints (applyModel aliases them) and pre-v3 labels
		// are untenanted (applyModel canonicalizes them). Open compacts
		// right after replay, rewriting the file with the current magic.
		s.upgradeOld = true
	default:
		// Unrecognized log: set it aside and start fresh rather than guess.
		f.Close()
		if err := quarantineFile(path); err != nil {
			return err
		}
		s.quarantinedTail += info.Size()
		return s.openWAL()
	}
	// Replay frames; stop at the first corrupt one and cut the tail there.
	r := bufio.NewReader(f)
	good := int64(len(walMagic))
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			s.quarantinedTail += info.Size() - good
			if err := f.Truncate(good); err != nil {
				f.Close()
				return fmt.Errorf("store: truncating corrupt WAL tail: %w", err)
			}
			break
		}
		s.applyRecord(payload, nil)
		good += int64(8 + len(payload))
		s.walFrames++
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.wal = f
	s.walBytes = good - int64(len(walMagic))
	return nil
}

// appendLocked frames and writes one record to the WAL in a single write
// call, syncing every SyncEvery records.
func (s *Store) appendLocked(payload []byte) error {
	n, err := writeFrame(s.wal, payload)
	s.walBytes += int64(n)
	if err != nil {
		return fmt.Errorf("store: WAL append: %w", err)
	}
	s.walTotal++
	s.walFrames++
	s.unsynced++
	s.notifyLocked()
	if s.unsynced >= s.opts.SyncEvery {
		s.unsynced = 0
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: WAL sync: %w", err)
		}
	}
	return nil
}

// maybeCompactLocked compacts when the WAL has outgrown CompactAt. Pinned
// stores (a snapshot handoff is mid-flight, see PinCompaction) defer: the
// WAL keeps growing and the next append retries after the pin lifts.
func (s *Store) maybeCompactLocked() {
	if s.pins == 0 && s.opts.CompactAt > 0 && s.walBytes > s.opts.CompactAt {
		// Compaction failure must not fail the append that triggered it;
		// the WAL keeps growing and the next append retries.
		_ = s.compactLocked()
	}
}

// notifyLocked wakes every WAL-stream long-poller: the committed region of
// the log changed (an append or a generation change).
func (s *Store) notifyLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// --- snapshot ---

// compactLocked writes the full state to a fresh snapshot (atomically:
// temp file, fsync, rename, fsync dir) and resets the WAL, starting a new
// generation: byte offsets into the previous WAL are no longer valid, and
// attached replication streams must re-handoff.
func (s *Store) compactLocked() error {
	buf, err := s.encodeStateLocked(s.epoch, s.gen+1)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.opts.Dir, snapshotTmp)
	if err := writeFileSync(tmp, buf.Bytes()); err != nil {
		return err
	}
	final := filepath.Join(s.opts.Dir, snapshotFile)
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	// The snapshot now covers everything; restart the log. The magic is
	// rewritten, not preserved, so compacting a v1 log upgrades it.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.wal.Write([]byte(walMagic)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.gen++
	s.walBytes = 0
	s.walFrames = 0
	s.tornBytes = 0
	s.unsynced = 0
	s.compacted++
	s.notifyLocked()
	return nil
}

// encodeStateLocked renders the full state in snapshot format (magic, meta
// frame, models, plans, hints, terminator) for the given epoch and
// generation — compaction stamps the next generation, a replication
// handoff the current one.
func (s *Store) encodeStateLocked(epoch, gen uint64) (*bytes.Buffer, error) {
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	if _, err := writeFrame(&buf, encodeMeta(epoch, gen)); err != nil {
		return nil, err
	}
	var nModels, nPlans, nHints int

	models := make([]ModelInfo, 0, len(s.models))
	for fp, m := range s.models {
		models = append(models, ModelInfo{Fingerprint: fp, Label: m.label})
	}
	sort.Slice(models, func(i, j int) bool { return models[i].Fingerprint < models[j].Fingerprint })
	for _, mi := range models {
		m := s.models[mi.Fingerprint]
		payload, err := encodeModel(mi.Fingerprint, m.label, m.fns)
		if err != nil {
			return nil, err
		}
		if _, err := writeFrame(&buf, payload); err != nil {
			return nil, err
		}
		nModels++
	}
	for _, k := range s.planOrder {
		r, ok := s.plans[k]
		if !ok {
			continue
		}
		if _, err := writeFrame(&buf, encodePlan(r)); err != nil {
			return nil, err
		}
		nPlans++
	}
	hints := s.hintsLocked()
	if s.hintSource != nil {
		if fresh := s.hintSource(); fresh != nil {
			hints = fresh
		}
	}
	for _, h := range hints {
		if _, ok := s.models[h.Model]; !ok {
			continue
		}
		if _, err := writeFrame(&buf, encodeHint(h)); err != nil {
			return nil, err
		}
		s.hints[hintKey{model: h.Model, n: h.N}] = h.Slope
		nHints++
	}
	if _, err := writeFrame(&buf, encodeSnapEnd(nModels, nPlans, nHints)); err != nil {
		return nil, err
	}
	return &buf, nil
}

// loadSnapshot reads the snapshot if present. Any corruption — bad magic,
// bad frame, decode failure, missing or inconsistent terminator —
// quarantines the whole file (renamed aside) and starts empty: WAL records
// depending on snapshot state then quarantine individually during replay.
func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.opts.Dir, snapshotFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	ok := func() bool {
		if len(data) < len(snapMagic) {
			return false
		}
		switch string(data[:len(snapMagic)]) {
		case snapMagic:
		case snapMagicV1, snapMagicV2:
			// Older-format snapshot: frames decode identically; v1 models
			// carry legacy fingerprints (applyModel aliases them), pre-v3
			// labels are untenanted (applyModel canonicalizes them); Open
			// compacts right after replay to rewrite the current format.
			s.upgradeOld = true
		default:
			return false
		}
		r := bytes.NewReader(data[len(snapMagic):])
		for {
			payload, err := readFrame(r)
			if err == io.EOF {
				return false // no terminator: truncated snapshot
			}
			if err != nil {
				return false
			}
			if payload[0] == recSnapEnd {
				d := &decoder{buf: payload[1:]}
				wantModels, wantPlans, wantHints, err := decodeSnapEnd(d)
				if err != nil || !d.done() || r.Len() != 0 {
					return false
				}
				// The terminator counts every record written; every record
				// seen was either applied or quarantined. Any other total
				// means frames went missing without breaking a CRC.
				seen := s.replayedModels + s.replayedPlans + s.replayedHints + s.quarantined
				return seen == wantModels+wantPlans+wantHints
			}
			s.applyRecord(payload, nil)
		}
	}()
	if !ok {
		// Reset whatever half-applied state the bad snapshot left behind.
		s.models = make(map[uint64]*modelEntry)
		s.labels = make(map[string]uint64)
		s.fpAlias = make(map[uint64]uint64)
		s.plans = make(map[planKey]plancache.PlanRecord)
		s.planOrder = nil
		s.hints = make(map[hintKey]float64)
		s.replayedModels, s.replayedPlans, s.replayedHints = 0, 0, 0
		s.quarantined = 0
		s.epoch, s.gen = 1, 0
		s.snapQuarantined = true
		if err := quarantineFile(path); err != nil {
			return err
		}
		return nil
	}
	s.loadedSnapshot = true
	return nil
}

// --- file helpers ---

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// quarantineFile renames a corrupt file aside (never deletes it), picking
// the first free .corrupt[.k] name.
func quarantineFile(path string) error {
	target := path + ".corrupt"
	for k := 1; ; k++ {
		if _, err := os.Stat(target); os.IsNotExist(err) {
			break
		}
		target = fmt.Sprintf("%s.corrupt.%d", path, k)
	}
	if err := os.Rename(path, target); err != nil {
		return fmt.Errorf("store: quarantining %s: %w", path, err)
	}
	return nil
}
