// Package report renders the experiment results as aligned ASCII tables
// and CSV, matching the rows and series of the paper's tables and figures.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	Notes   []string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Cells are stringified with %v unless they are
// float64, which are formatted compactly.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-form footnote rendered after the grid.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return strconv.FormatInt(int64(v), 10)
	case v >= 1000 || v <= -1000:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case v >= 1 || v <= -1:
		return strconv.FormatFloat(v, 'f', 2, 64)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table, with the
// notes as a trailing list.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
