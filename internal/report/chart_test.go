package report

import (
	"math"
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	c := NewChart("Speed vs size", "size", "MFlops")
	if err := c.AddSeries("fast", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); err != nil {
		t.Fatalf("AddSeries: %v", err)
	}
	if err := c.AddSeries("slow", []float64{1, 2, 3, 4}, []float64{5, 6, 7, 8}); err != nil {
		t.Fatalf("AddSeries: %v", err)
	}
	out := c.String()
	for _, want := range []string{"Speed vs size", "* fast", "+ slow", "x: size, y: MFlops"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("chart has no plotted glyphs")
	}
	if c.NumSeries() != 2 {
		t.Errorf("NumSeries = %d", c.NumSeries())
	}
}

func TestChartExtremesLandOnEdges(t *testing.T) {
	c := NewChart("", "", "")
	c.Width, c.Height = 40, 10
	if err := c.AddSeries("s", []float64{0, 100}, []float64{0, 50}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(c.String(), "\n"), "\n")
	// Max y on the first plot row, min y on the last.
	if !strings.Contains(lines[0], "*") {
		t.Errorf("max point not on top row: %q", lines[0])
	}
	if !strings.Contains(lines[9], "*") {
		t.Errorf("min point not on bottom row: %q", lines[9])
	}
	// Axis labels present.
	if !strings.Contains(lines[0], "50") || !strings.Contains(lines[9], "0") {
		t.Errorf("y labels missing: %q / %q", lines[0], lines[9])
	}
}

func TestChartLogY(t *testing.T) {
	c := NewChart("log", "", "")
	c.LogY = true
	// With log scaling, 1 → 10 → 100 must be evenly spaced vertically.
	if err := c.AddSeries("s", []float64{0, 1, 2}, []float64{1, 10, 100}); err != nil {
		t.Fatal(err)
	}
	c.Width, c.Height = 21, 9
	out := c.String()
	rows := []int{}
	for i, line := range strings.Split(out, "\n") {
		// Only plot rows (marked by the axis bar), not the legend.
		if strings.Contains(line, "|") && strings.Contains(line, "*") {
			rows = append(rows, i)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 plotted rows, got %v\n%s", rows, out)
	}
	if (rows[1] - rows[0]) != (rows[2] - rows[1]) {
		t.Errorf("log spacing uneven: %v", rows)
	}
	// Zero and negative values are skipped silently under LogY.
	if err := c.AddSeries("zeros", []float64{0, 1}, []float64{0, -5}); err != nil {
		t.Fatal(err)
	}
	_ = c.String()
}

func TestChartEmptyAndInvalid(t *testing.T) {
	c := NewChart("empty", "", "")
	if !strings.Contains(c.String(), "(no data)") {
		t.Error("empty chart must say so")
	}
	if err := c.AddSeries("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths: want error")
	}
	if err := c.AddSeries("empty", nil, nil); err == nil {
		t.Error("empty series: want error")
	}
	// All-NaN series renders as no data.
	c2 := NewChart("nan", "", "")
	if err := c2.AddSeries("n", []float64{1}, []float64{math.NaN()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c2.String(), "(no data)") {
		t.Error("all-NaN chart must render as no data")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := NewChart("flat", "", "")
	if err := c.AddSeries("s", []float64{1, 2}, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

func TestChartLogX(t *testing.T) {
	c := NewChart("logx", "size", "v")
	c.LogX = true
	c.Width, c.Height = 21, 5
	// 1 → 10 → 100 evenly spaced horizontally under LogX.
	if err := c.AddSeries("s", []float64{1, 10, 100}, []float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	var cols []int
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "|") {
			continue
		}
		for i := strings.IndexByte(line, '|') + 1; i < len(line); i++ {
			if line[i] == '*' {
				cols = append(cols, i)
			}
		}
	}
	if len(cols) != 3 {
		t.Fatalf("expected 3 plotted columns, got %v\n%s", cols, out)
	}
	if (cols[1] - cols[0]) != (cols[2] - cols[1]) {
		t.Errorf("log-x spacing uneven: %v", cols)
	}
	if !strings.Contains(out, "x: size (log scale)") {
		t.Errorf("missing log-x label:\n%s", out)
	}
	// Non-positive x values are skipped under LogX.
	if err := c.AddSeries("z", []float64{0, -3}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	_ = c.String()
}
