package report

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders one or more (x, y) series as an ASCII line chart, so the
// regenerated paper figures can be eyeballed in a terminal next to the
// originals. Series are overlaid with distinct glyphs.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot area in characters (defaults 72×20).
	Width, Height int
	// LogY plots the y axis logarithmically (speed curves span decades).
	LogY bool
	// LogX plots the x axis logarithmically (for power-of-two sweeps).
	LogX   bool
	series []chartSeries
}

type chartSeries struct {
	name string
	xs   []float64
	ys   []float64
}

// seriesGlyphs are assigned to series in order.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// NewChart creates an empty chart.
func NewChart(title, xLabel, yLabel string) *Chart {
	return &Chart{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// AddSeries appends a named series. xs and ys must have equal, non-zero
// length; non-finite values are skipped at render time.
func (c *Chart) AddSeries(name string, xs, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("report: series %q has %d xs and %d ys", name, len(xs), len(ys))
	}
	c.series = append(c.series, chartSeries{
		name: name,
		xs:   append([]float64(nil), xs...),
		ys:   append([]float64(nil), ys...),
	})
	return nil
}

// NumSeries returns the number of series added.
func (c *Chart) NumSeries() int { return len(c.series) }

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.xs {
			x, y := s.xs[i], s.ys[i]
			if !finite(x) || !finite(y) {
				continue
			}
			if (c.LogY && y <= 0) || (c.LogX && x <= 0) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if math.IsInf(xmin, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	ty := func(y float64) float64 {
		if c.LogY {
			return math.Log(y)
		}
		return y
	}
	tx := func(x float64) float64 {
		if c.LogX {
			return math.Log(x)
		}
		return x
	}
	lo, hi := ty(ymin), ty(ymax)
	if hi == lo {
		hi = lo + 1
	}
	xlo, xhi := tx(xmin), tx(xmax)
	if xhi == xlo {
		xhi = xlo + 1
	}
	cells := make([][]byte, h)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.xs {
			x, y := s.xs[i], s.ys[i]
			if !finite(x) || !finite(y) || (c.LogY && y <= 0) || (c.LogX && x <= 0) {
				continue
			}
			col := int(math.Round((tx(x) - xlo) / (xhi - xlo) * float64(w-1)))
			row := h - 1 - int(math.Round((ty(y)-lo)/(hi-lo)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				cells[row][col] = glyph
			}
		}
	}
	yTop := FormatFloat(ymax)
	yBot := FormatFloat(ymin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = pad(yTop, margin)
		case h - 1:
			label = pad(yBot, margin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(cells[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", w))
	left := FormatFloat(xmin)
	right := FormatFloat(xmax)
	gap := w - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", margin), left, strings.Repeat(" ", gap), right)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s%s, y: %s%s\n", strings.Repeat(" ", margin),
			c.XLabel, logSuffix(c.LogX), c.YLabel, logSuffix(c.LogY))
	}
	for i, s := range c.series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", margin), seriesGlyphs[i%len(seriesGlyphs)], s.name)
	}
	return b.String()
}

func logSuffix(log bool) string {
	if log {
		return " (log scale)"
	}
	return ""
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
