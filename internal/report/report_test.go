package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	tb.AddNote("a note with %d", 7)
	s := tb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "1.50", "42", "note: a note with 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tb := New("", "a", "bbbb")
	tb.AddRow("xxxxx", "y")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d: %q", len(lines), lines)
	}
	// Column 2 of the header must start at the same offset as in the row.
	if strings.Index(lines[0], "bbbb") != strings.Index(lines[2], "y") {
		t.Errorf("columns misaligned:\n%s", tb)
	}
}

func TestCSV(t *testing.T) {
	tb := New("T", "x", "note")
	tb.AddRow(1, `say "hi", ok`)
	csv := tb.CSV()
	want := "x,note\n1,\"say \"\"hi\"\", ok\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestRowsCopy(t *testing.T) {
	tb := New("T", "x")
	tb.AddRow("v")
	rows := tb.Rows()
	rows[0][0] = "mutated"
	if tb.Rows()[0][0] != "v" {
		t.Error("Rows() exposed internal storage")
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{-3, "-3"},
		{1234.6, "1235"},
		{3.14159, "3.14"},
		{0.00123, "0.00123"},
		{2e9, "2000000000"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddRow("x|y", 2)
	tb.AddNote("n1")
	md := tb.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", `x\|y`, "*n1*"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}
