package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m, err := New(3, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %d×%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.Row(1)[2]; got != 7.5 {
		t.Errorf("Row(1)[2] = %v, want 7.5", got)
	}
}

func TestNewRejectsNegative(t *testing.T) {
	if _, err := New(-1, 2); err == nil {
		t.Error("New(-1, 2): want error")
	}
	if _, err := New(2, -1); err == nil {
		t.Error("New(2, -1): want error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(-1, 1) did not panic")
		}
	}()
	MustNew(-1, 1)
}

func TestRowStripeSharesStorage(t *testing.T) {
	m := MustNew(5, 3)
	m.FillRandom(1)
	s, err := m.RowStripe(1, 4)
	if err != nil {
		t.Fatalf("RowStripe: %v", err)
	}
	if s.Rows != 3 || s.Cols != 3 {
		t.Fatalf("stripe shape %d×%d", s.Rows, s.Cols)
	}
	s.Set(0, 0, 42)
	if m.At(1, 0) != 42 {
		t.Error("stripe does not alias parent storage")
	}
}

func TestRowStripeBounds(t *testing.T) {
	m := MustNew(5, 3)
	for _, c := range [][2]int{{-1, 2}, {3, 2}, {0, 6}} {
		if _, err := m.RowStripe(c[0], c[1]); err == nil {
			t.Errorf("RowStripe(%d, %d): want error", c[0], c[1])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := MustNew(2, 2)
	m.FillRandom(9)
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Error("Clone shares storage")
	}
	if !Equalish(m, m.Clone(), 0) {
		t.Error("Clone not equal to original")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a, b := MustNew(4, 4), MustNew(4, 4)
	a.FillRandom(5)
	b.FillRandom(5)
	if !Equalish(a, b, 0) {
		t.Error("same seed differs")
	}
	b.FillRandom(6)
	if Equalish(a, b, 0) {
		t.Error("different seeds identical")
	}
}

func TestFillIdentity(t *testing.T) {
	m := MustNew(3, 3)
	m.FillRandom(2)
	if err := m.FillIdentity(); err != nil {
		t.Fatalf("FillIdentity: %v", err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
	if err := MustNew(2, 3).FillIdentity(); err == nil {
		t.Error("identity of non-square: want error")
	}
}

func TestEqualishAndMaxAbsDiff(t *testing.T) {
	a, b := MustNew(2, 2), MustNew(2, 2)
	a.Set(0, 0, 1)
	b.Set(0, 0, 1.05)
	if !Equalish(a, b, 0.1) {
		t.Error("Equalish(0.1) = false")
	}
	if Equalish(a, b, 0.01) {
		t.Error("Equalish(0.01) = true")
	}
	if got := MaxAbsDiff(a, b); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("MaxAbsDiff = %v, want 0.05", got)
	}
	if Equalish(a, MustNew(2, 3), 1) {
		t.Error("Equalish across shapes = true")
	}
	if !math.IsInf(MaxAbsDiff(a, MustNew(3, 2)), 1) {
		t.Error("MaxAbsDiff across shapes must be +Inf")
	}
}

func TestStripes(t *testing.T) {
	s, err := Stripes([]int64{2, 0, 3}, 5)
	if err != nil {
		t.Fatalf("Stripes: %v", err)
	}
	want := [][2]int{{0, 2}, {2, 2}, {2, 5}}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("stripes = %v, want %v", s, want)
		}
	}
}

func TestStripesErrors(t *testing.T) {
	if _, err := Stripes([]int64{2, 2}, 5); err == nil {
		t.Error("sum mismatch: want error")
	}
	if _, err := Stripes([]int64{-1, 6}, 5); err == nil {
		t.Error("negative count: want error")
	}
}

// Property: stripes tile [0, total) exactly, in order, with no gaps.
func TestStripesProperty(t *testing.T) {
	check := func(sizes []uint8) bool {
		counts := make([]int64, len(sizes))
		var total int64
		for i, s := range sizes {
			counts[i] = int64(s)
			total += int64(s)
		}
		st, err := Stripes(counts, int(total))
		if err != nil {
			return false
		}
		at := 0
		for i, s := range st {
			if s[0] != at || s[1]-s[0] != int(counts[i]) {
				return false
			}
			at = s[1]
		}
		return at == int(total)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
