// Package matrix provides the dense row-major matrix type and the striped
// partitioning helpers used by the paper's two applications: matrix
// multiplication C = A×Bᵀ with horizontal striped partitioning and LU
// factorization with block-column distributions.
package matrix

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Dense is a dense row-major matrix of float64.
type Dense struct {
	Rows, Cols int
	// Data holds Rows×Cols values, row i at Data[i*Cols : (i+1)*Cols].
	Data []float64
}

// New allocates a zeroed r×c matrix.
func New(r, c int) (*Dense, error) {
	if r < 0 || c < 0 {
		return nil, errDims(r, c)
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}, nil
}

func errDims(r, c int) error {
	return fmt.Errorf("matrix: invalid dimensions %d×%d", r, c)
}

func errShapeCopy(dst, src *Dense) error {
	return fmt.Errorf("matrix: copy %d×%d into %d×%d", src.Rows, src.Cols, dst.Rows, dst.Cols)
}

// MustNew is like New but panics on invalid dimensions.
func MustNew(r, c int) *Dense {
	m, err := New(r, c)
	if err != nil {
		panic(err)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// RowStripe returns rows [i0, i1) as a view sharing storage with m.
func (m *Dense) RowStripe(i0, i1 int) (*Dense, error) {
	if i0 < 0 || i1 < i0 || i1 > m.Rows {
		return nil, fmt.Errorf("matrix: stripe [%d, %d) of %d rows", i0, i1, m.Rows)
	}
	return &Dense{
		Rows: i1 - i0,
		Cols: m.Cols,
		Data: m.Data[i0*m.Cols : i1*m.Cols],
	}, nil
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.Data))
	copy(d, m.Data)
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: d}
}

// FillRandom fills the matrix with deterministic uniform values in [0, 1).
func (m *Dense) FillRandom(seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb))
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
}

// FillIdentity sets the matrix to the identity (square matrices only).
func (m *Dense) FillIdentity() error {
	if m.Rows != m.Cols {
		return fmt.Errorf("matrix: identity needs a square matrix, have %d×%d", m.Rows, m.Cols)
	}
	for i := range m.Data {
		m.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		m.Set(i, i, 1)
	}
	return nil
}

// Equalish reports whether two matrices agree elementwise within tol.
func Equalish(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise absolute difference, or +Inf
// on shape mismatch.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var worst float64
	for i, v := range a.Data {
		worst = math.Max(worst, math.Abs(v-b.Data[i]))
	}
	return worst
}

// Stripes converts a row-count allocation into consecutive [start, end)
// stripe boundaries. The allocation entries must be non-negative and sum
// to the matrix row count.
func Stripes(rowCounts []int64, totalRows int) ([][2]int, error) {
	var sum int64
	for i, r := range rowCounts {
		if r < 0 {
			return nil, fmt.Errorf("matrix: negative stripe size %d at %d", r, i)
		}
		sum += r
	}
	if sum != int64(totalRows) {
		return nil, fmt.Errorf("matrix: stripes sum to %d, want %d rows", sum, totalRows)
	}
	out := make([][2]int, len(rowCounts))
	at := 0
	for i, r := range rowCounts {
		out[i] = [2]int{at, at + int(r)}
		at += int(r)
	}
	return out, nil
}
