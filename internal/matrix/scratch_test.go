package matrix

import (
	"sync"
	"testing"
)

func TestGetBufferLengthAndReuse(t *testing.T) {
	b := GetBuffer(100)
	if len(b) != 100 {
		t.Fatalf("len = %d, want 100", len(b))
	}
	for i := range b {
		b[i] = float64(i)
	}
	PutBuffer(b)
	b2 := GetBuffer(50)
	if len(b2) != 50 {
		t.Fatalf("len = %d, want 50", len(b2))
	}
	PutBuffer(b2)
	if got := GetBuffer(0); len(got) != 0 {
		t.Fatalf("GetBuffer(0) length %d", len(got))
	}
	if got := GetBuffer(-3); len(got) != 0 {
		t.Fatalf("GetBuffer(-3) length %d", len(got))
	}
	PutBuffer(nil) // must not panic
}

func TestGetDensePutDense(t *testing.T) {
	m := MustGetDense(7, 11)
	if m.Rows != 7 || m.Cols != 11 || len(m.Data) != 77 {
		t.Fatalf("bad scratch matrix %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left a non-zero element")
		}
	}
	PutDense(m)
	PutDense(nil) // must not panic
	if _, err := GetDense(-1, 2); err == nil {
		t.Error("GetDense(-1, 2) accepted")
	}
}

func TestCopyFrom(t *testing.T) {
	src := MustNew(3, 4)
	src.FillRandom(9)
	dst := MustGetDense(3, 4)
	defer PutDense(dst)
	if err := dst.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	if !Equalish(dst, src, 0) {
		t.Error("copy differs from source")
	}
	bad := MustNew(4, 3)
	if err := bad.CopyFrom(src); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestScratchConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 + (g*37+i)%257
				b := GetBuffer(n)
				for j := range b {
					b[j] = float64(g)
				}
				for j := range b {
					if b[j] != float64(g) {
						t.Errorf("buffer shared between goroutines")
						return
					}
				}
				PutBuffer(b)
			}
		}(g)
	}
	wg.Wait()
}
