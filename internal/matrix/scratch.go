package matrix

import "sync"

// Scratch reuse: the measurement oracles and the parallel kernels need
// short-lived buffers (packed B tiles, per-repeat working copies) on every
// iteration; a process-wide sync.Pool turns those per-iteration
// allocations into reuse. Buffers are handed out with undefined contents —
// callers that need zeroes call Zero explicitly.

// bufPool stores *[]float64 to avoid an allocation per Put.
var bufPool = sync.Pool{New: func() any { s := []float64(nil); return &s }}

// GetBuffer returns a float64 scratch slice of length n, reusing a pooled
// allocation when one with sufficient capacity is available. Contents are
// undefined. Return it with PutBuffer when done.
func GetBuffer(n int) []float64 {
	if n < 0 {
		n = 0
	}
	p := bufPool.Get().(*[]float64)
	if cap(*p) >= n {
		buf := (*p)[:n]
		*p = nil
		bufPool.Put(p)
		return buf
	}
	*p = nil
	bufPool.Put(p)
	return make([]float64, n)
}

// PutBuffer returns a slice obtained from GetBuffer (or any slice the
// caller no longer needs) to the pool. The caller must not use buf again.
func PutBuffer(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	p := bufPool.Get().(*[]float64)
	// Keep the larger of the two allocations.
	if cap(*p) < cap(buf) {
		*p = buf
	}
	bufPool.Put(p)
}

// densePool recycles Dense headers; their Data comes from the buffer pool.
var densePool = sync.Pool{New: func() any { return new(Dense) }}

// GetDense returns an r×c scratch matrix with undefined contents, backed
// by pooled storage. Return it with PutDense when done; do not retain
// views of it past the Put.
func GetDense(r, c int) (*Dense, error) {
	if r < 0 || c < 0 {
		return nil, errDims(r, c)
	}
	m := densePool.Get().(*Dense)
	m.Rows, m.Cols = r, c
	m.Data = GetBuffer(r * c)
	return m, nil
}

// MustGetDense is like GetDense but panics on invalid dimensions.
func MustGetDense(r, c int) *Dense {
	m, err := GetDense(r, c)
	if err != nil {
		panic(err)
	}
	return m
}

// PutDense returns a scratch matrix to the pool.
func PutDense(m *Dense) {
	if m == nil {
		return
	}
	PutBuffer(m.Data)
	m.Rows, m.Cols, m.Data = 0, 0, nil
	densePool.Put(m)
}

// Zero clears every element.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies src's contents into m, which must have the same shape.
// Unlike Clone it performs no allocation, pairing with GetDense for
// repeated-measurement loops.
func (m *Dense) CopyFrom(src *Dense) error {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		return errShapeCopy(m, src)
	}
	copy(m.Data, src.Data)
	return nil
}
