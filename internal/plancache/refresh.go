package plancache

import (
	"math"
	"sort"

	"heteropart/internal/core"
	"heteropart/internal/speed"
)

// Selective invalidation for one-processor model refreshes.
//
// The partitioner's result is the canonical stable allocation: fineTune's
// stabilize pass runs until no donor/receiver move (strict or tie-breaking)
// fires, and that termination predicate consults processor i only through
// its integer time samples t_i(x) = x / f_i.Eval(x) at x = alloc[i] and
// x = alloc[i]+1 plus its cap floor(MaxSize) (see core/finetune.go). So
// when processor k's speed function is replaced, a cached allocation is
// provably unchanged as long as the replacement agrees bit-for-bit with
// the old function at those two sample points and k's cap eligibility is
// unchanged: the stability predicate evaluates identically under the new
// model, and since the canonical stable allocation for (n, model) is
// unique, a cold recompute must return the very same integers. Everything
// else about the two functions — shape elsewhere, where the bisection
// would have searched — only affects the search path, which stabilize
// erases.
//
// This is what lets Refresh keep most of a warm cache across a drift
// event instead of dropping to 0% hits: plans whose allocation for the
// drifted processor sits outside the changed region survive verbatim, and
// only the rest recompute (warm-started from their previous slopes).

// SurvivesProc reports whether a cached allocation that assigns x elements
// to a processor is provably unaffected by replacing that processor's
// speed function oldFn with newFn. The rule is conservative: false means
// "could change", not "does change".
func SurvivesProc(x int64, oldFn, newFn speed.Function) bool {
	capOld := int64(math.Floor(oldFn.MaxSize()))
	capNew := int64(math.Floor(newFn.MaxSize()))
	if x > capNew {
		// The allocation is no longer feasible for this processor.
		return false
	}
	if (x < capOld) != (x < capNew) {
		// Receiver eligibility flipped: stabilize probes t(x+1) only while
		// x < cap, so gaining or losing headroom can move the fixed point.
		return false
	}
	if x > 0 && !sameEval(oldFn, newFn, float64(x)) {
		return false
	}
	if x < capNew && !sameEval(oldFn, newFn, float64(x+1)) {
		return false
	}
	return true
}

// sameEval reports bit-identical speed at size x, the equality stabilize's
// time samples inherit (x/Eval(x) is deterministic in the Eval bits).
func sameEval(oldFn, newFn speed.Function, x float64) bool {
	return math.Float64bits(oldFn.Eval(x)) == math.Float64bits(newFn.Eval(x))
}

// planSurvives applies SurvivesProc at every changed processor index.
func planSurvives(alloc core.Allocation, changed []int, oldFns, newFns []speed.Function) bool {
	if len(alloc) != len(newFns) {
		return false
	}
	for _, p := range changed {
		if p < 0 || p >= len(alloc) {
			return false
		}
		if !SurvivesProc(alloc[p], oldFns[p], newFns[p]) {
			return false
		}
	}
	return true
}

// Refresh migrates the cache across an in-place model refresh from oldFns
// to newFns (same processor count, typically one changed function). Plans
// that provably cannot change (SurvivesProc at every changed index) are
// re-keyed to the new fingerprint and kept; the rest are dropped, and
// their slopes — plus the model's whole warm-hint index — carry over to
// the new fingerprint, so the dropped sizes recompute warm-started from
// their own previous bisection state. Returns how many plans were kept
// and dropped.
//
// Refresh works in read-only mode: like Import and Invalidate it IS the
// write path while a replica mirrors its primary's delta records. It never
// fires the insert tap — the store logs the delta record itself and
// applies the same survival rule, so the WAL stays O(one processor) per
// refresh instead of O(surviving plans).
func (c *Cache) Refresh(oldFns, newFns []speed.Function) (kept, dropped int) {
	oldFP := speed.Fingerprint(oldFns)
	newFP := speed.Fingerprint(newFns)
	if oldFP == newFP {
		return 0, 0
	}
	changed, ok := speed.Diff(oldFns, newFns)
	if !ok {
		// Processor count changed: no allocation can carry over.
		return 0, c.InvalidateFingerprint(oldFP)
	}
	c.refreshes.Add(1)

	var moved []*entry
	var droppedHints []hint
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.model != oldFP {
				continue
			}
			sh.unlink(e)
			delete(sh.entries, k)
			if planSurvives(e.res.Alloc, changed, oldFns, newFns) {
				moved = append(moved, e)
			} else {
				if k.n > 0 && e.res.Slope > 0 {
					droppedHints = append(droppedHints, hint{n: k.n, slope: e.res.Slope})
				}
				dropped++
			}
		}
		sh.mu.Unlock()
	}

	// Survivors re-insert under the new fingerprint; the key hash changes,
	// so an entry can land on a different shard than it came from.
	for _, e := range moved {
		k := e.k
		k.model = newFP
		h := k.hash()
		sh := &c.shards[h&(numShards-1)]
		sh.mu.Lock()
		evicted, inserted := sh.insert(k, e.res)
		c.evictions.Add(evicted)
		sh.mu.Unlock()
		if inserted {
			kept++
		}
	}

	// Warm hints are search seeds, never results: a slope computed under
	// the old model still lands the bisection in the right region after a
	// one-processor drift, so the whole index transfers, topped up with
	// the dropped plans' own slopes.
	c.warm.mu.Lock()
	hints := c.warm.models[oldFP]
	delete(c.warm.models, oldFP)
	hints = append(hints, c.warm.models[newFP]...)
	hints = append(hints, droppedHints...)
	if len(hints) > 0 {
		sort.Slice(hints, func(a, b int) bool { return hints[a].n < hints[b].n })
		// Dedup by n (last writer wins within equal n is irrelevant for
		// seeds) and bound the index.
		out := hints[:1]
		for _, h := range hints[1:] {
			if h.n != out[len(out)-1].n {
				out = append(out, h)
			}
		}
		if len(out) > warmHintsPerModel {
			out = out[:warmHintsPerModel]
		}
		c.warm.models[newFP] = out
	}
	c.warm.mu.Unlock()

	c.refreshKept.Add(uint64(kept))
	c.refreshDropped.Add(uint64(dropped))
	return kept, dropped
}
