package plancache

import (
	"sync"
	"testing"

	"heteropart/internal/core"
	"heteropart/internal/speed"
)

func TestDoorkeeperAdmitsOnSecondMiss(t *testing.T) {
	c := NewWithConfig(Config{Doorkeeper: true})
	fns := testCluster(8, 21)
	// First request: computed but not inserted.
	if _, tier, err := c.GetTier(core.AlgoCombined, 700_000, fns); err != nil || tier != TierMiss {
		t.Fatalf("first request: tier=%v err=%v", tier, err)
	}
	st := c.Stats()
	if st.Size != 0 || st.Rejected != 1 || st.Admitted != 0 {
		t.Fatalf("after first miss: %+v, want rejected=1 size=0", st)
	}
	// Second request: still a miss, but now admitted.
	first, tier, err := c.GetTier(core.AlgoCombined, 700_000, fns)
	if err != nil || tier != TierMiss {
		t.Fatalf("second request: tier=%v err=%v", tier, err)
	}
	st = c.Stats()
	if st.Size != 1 || st.Admitted != 1 {
		t.Fatalf("after second miss: %+v, want admitted=1 size=1", st)
	}
	// Third request: an exact hit, bit-identical.
	got, tier, err := c.GetTier(core.AlgoCombined, 700_000, fns)
	if err != nil || tier != TierHit {
		t.Fatalf("third request: tier=%v err=%v", tier, err)
	}
	for i := range first.Alloc {
		if got.Alloc[i] != first.Alloc[i] {
			t.Fatalf("proc %d: hit %d != computed %d", i, got.Alloc[i], first.Alloc[i])
		}
	}
}

func TestDoorkeeperStillRecordsWarmHints(t *testing.T) {
	c := NewWithConfig(Config{Doorkeeper: true})
	fns := testCluster(8, 22)
	// One-shot sizes: never inserted, but their hints must still seed
	// nearby misses.
	for n := int64(1_000_000); n <= 8_000_000; n *= 2 {
		if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get(core.AlgoCombined, 3_000_000, fns); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Size != 0 {
		t.Fatalf("one-shot sizes were inserted: %+v", st)
	}
	if st.WarmStarts == 0 {
		t.Fatalf("rejected sizes left no warm hints: %+v", st)
	}
}

func TestDoorkeeperGenerationsRotate(t *testing.T) {
	d := &doorkeeper{cap: 4, cur: make(map[uint64]struct{})}
	for h := uint64(0); h < 8; h++ {
		d.remember(h)
	}
	// cap 4: after 8 inserts one rotation happened; the last 8 keys must
	// still be remembered across cur+prev.
	for h := uint64(0); h < 8; h++ {
		if !d.seen(h) {
			t.Fatalf("key %d forgotten too early", h)
		}
	}
	for h := uint64(8); h < 16; h++ {
		d.remember(h)
	}
	if d.seen(0) {
		t.Fatal("key 0 survived two generations")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	c := New(0)
	fns := testCluster(10, 23)
	sizes := []int64{200_000, 300_000, 400_000, 500_000}
	want := make(map[int64]core.Result)
	for _, n := range sizes {
		res, err := c.Get(core.AlgoCombined, n, fns)
		if err != nil {
			t.Fatal(err)
		}
		want[n] = res
	}
	plans, hints := c.Export()
	if len(plans) != len(sizes) {
		t.Fatalf("exported %d plans, want %d", len(plans), len(sizes))
	}
	if len(hints) == 0 {
		t.Fatal("no warm hints exported")
	}

	fresh := New(0)
	if got := fresh.Import(plans, hints); got != len(sizes) {
		t.Fatalf("imported %d plans, want %d", got, len(sizes))
	}
	for _, n := range sizes {
		got, tier, err := fresh.GetTier(core.AlgoCombined, n, fns)
		if err != nil {
			t.Fatal(err)
		}
		if tier != TierHit {
			t.Fatalf("n=%d not served from imported cache (tier %v)", n, tier)
		}
		if got.Slope != want[n].Slope || got.Stats != want[n].Stats {
			t.Fatalf("n=%d: slope/stats differ after import", n)
		}
		for i := range want[n].Alloc {
			if got.Alloc[i] != want[n].Alloc[i] {
				t.Fatalf("n=%d proc %d: %d != %d", n, i, got.Alloc[i], want[n].Alloc[i])
			}
		}
	}
	// Imported hints must warm-start new sizes.
	if _, err := fresh.Get(core.AlgoCombined, 350_000, fns); err != nil {
		t.Fatal(err)
	}
	if st := fresh.Stats(); st.WarmStarts == 0 {
		t.Fatalf("imported hints unused: %+v", st)
	}
}

func TestImportRejectsInvalidRecords(t *testing.T) {
	c := New(0)
	good := PlanRecord{Model: 7, N: 10, Algo: core.AlgoCombined, Slope: 1, Alloc: core.Allocation{4, 6}}
	bad := []PlanRecord{
		{Model: 7, N: 10, Alloc: core.Allocation{4, 7}},   // sum mismatch
		{Model: 7, N: 10, Alloc: nil},                     // empty alloc
		{Model: 7, N: 10, Alloc: core.Allocation{-1, 11}}, // negative share
	}
	if got := c.Import(append(bad, good), nil); got != 1 {
		t.Fatalf("imported %d records, want only the valid one", got)
	}
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("size %d after import, want 1", st.Size)
	}
}

func TestInsertTapSeesAdmittedPlans(t *testing.T) {
	c := New(0)
	fns := testCluster(6, 24)
	var mu sync.Mutex
	var tapped []PlanRecord
	c.SetInsertTap(func(r PlanRecord) {
		mu.Lock()
		tapped = append(tapped, r)
		mu.Unlock()
	})
	var invalidated []uint64
	c.SetInvalidateTap(func(model uint64) {
		mu.Lock()
		invalidated = append(invalidated, model)
		mu.Unlock()
	})
	res, err := c.Get(core.AlgoCombined, 600_000, fns)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(core.AlgoCombined, 600_000, fns); err != nil { // hit: no tap
		t.Fatal(err)
	}
	mu.Lock()
	if len(tapped) != 1 {
		mu.Unlock()
		t.Fatalf("tap fired %d times, want 1", len(tapped))
	}
	rec := tapped[0]
	mu.Unlock()
	if rec.Model != speed.Fingerprint(fns) || rec.N != 600_000 || !rec.Valid() {
		t.Fatalf("tap record wrong: %+v", rec)
	}
	for i := range res.Alloc {
		if rec.Alloc[i] != res.Alloc[i] {
			t.Fatalf("tap alloc differs at %d", i)
		}
	}
	// Mutating the tapped record must not corrupt the cache.
	rec.Alloc[0] = -5
	again, _ := c.Get(core.AlgoCombined, 600_000, fns)
	if again.Alloc[0] != res.Alloc[0] {
		t.Fatal("tap record aliases the cached plan")
	}

	c.Invalidate(fns)
	mu.Lock()
	if len(invalidated) != 1 || invalidated[0] != speed.Fingerprint(fns) {
		mu.Unlock()
		t.Fatalf("invalidate tap got %v", invalidated)
	}
	mu.Unlock()

	// Removing the taps stops the callbacks.
	c.SetInsertTap(nil)
	c.SetInvalidateTap(nil)
	if _, err := c.Get(core.AlgoCombined, 601_000, fns); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(fns)
	mu.Lock()
	defer mu.Unlock()
	if len(tapped) != 1 || len(invalidated) != 1 {
		t.Fatalf("taps fired after removal: %d/%d", len(tapped), len(invalidated))
	}
}
