package plancache

import (
	"testing"

	"heteropart/internal/core"
	"heteropart/internal/speed"
)

// randomPWLCluster builds p random piecewise-linear speed functions from
// the seed, repaired to the shape constraint. Knot positions and speeds
// come from an LCG, so the corpus is replayable byte-for-byte.
func randomPWLCluster(p int, seed uint32) []speed.Function {
	fns := make([]speed.Function, p)
	s := seed | 1
	next := func(mod uint32) float64 {
		s = s*1664525 + 1013904223
		return float64(s % mod)
	}
	for i := range fns {
		knots := 2 + int(next(9))
		pts := make([]speed.Point, 0, knots)
		x := 100 + next(10_000)
		for k := 0; k < knots; k++ {
			y := 1e5 * (1 + next(1000))
			pts = append(pts, speed.Point{X: x, Y: y})
			x *= 2 + next(8)
		}
		fns[i] = speed.MustPiecewiseLinear(speed.EnforceShape(pts))
	}
	return fns
}

// FuzzWarmStartBitIdentical asserts the tentpole's correctness contract:
// for any random PWL cluster and any pair of problem sizes, a warm-started
// run and a cache-served run produce allocations bit-identical to a cold
// core.Combined run.
func FuzzWarmStartBitIdentical(f *testing.F) {
	f.Add(uint32(1), uint8(4), uint32(100_000), uint32(120_000))
	f.Add(uint32(7), uint8(2), uint32(50_000), uint32(51_000))
	f.Add(uint32(42), uint8(16), uint32(1_000_000), uint32(400_000))
	f.Add(uint32(99), uint8(9), uint32(77_777), uint32(77_777))
	f.Add(uint32(1234), uint8(31), uint32(3_000_000), uint32(2_999_999))
	f.Fuzz(func(t *testing.T, seed uint32, pRaw uint8, n1Raw, n2Raw uint32) {
		p := 2 + int(pRaw%63)
		fns := randomPWLCluster(p, seed)
		var capacity int64
		for _, fn := range fns {
			capacity += int64(fn.MaxSize())
		}
		n1 := 1 + int64(n1Raw)%(capacity/2)
		n2 := 1 + int64(n2Raw)%(capacity/2)

		cold1, err := core.Combined(n1, fns)
		if err != nil {
			t.Skip() // degenerate random model (e.g. all-zero speeds)
		}
		cold2, err := core.Combined(n2, fns)
		if err != nil {
			t.Skip()
		}

		// Warm-started directly with the other size's solution slope.
		pr := core.NewPartitioner()
		dst := make(core.Allocation, p)
		warm, err := pr.PartitionInto(dst, core.AlgoCombined, n2, fns,
			core.WithWarmStart(cold1.Slope, 0.25))
		if err != nil {
			t.Fatalf("warm run failed where cold succeeded: %v", err)
		}
		for i := range cold2.Alloc {
			if warm.Alloc[i] != cold2.Alloc[i] {
				t.Fatalf("warm-started allocation diverges: seed=%d p=%d n1=%d n2=%d proc=%d warm=%d cold=%d",
					seed, p, n1, n2, i, warm.Alloc[i], cold2.Alloc[i])
			}
		}

		// Cache-served: first Get seeds the warm index, second Get is
		// warm-started internally, third is an exact hit.
		c := New(0)
		if _, err := c.Get(core.AlgoCombined, n1, fns); err != nil {
			t.Fatalf("cache Get(n1): %v", err)
		}
		for pass := 0; pass < 2; pass++ {
			served, err := c.Get(core.AlgoCombined, n2, fns)
			if err != nil {
				t.Fatalf("cache Get(n2) pass %d: %v", pass, err)
			}
			for i := range cold2.Alloc {
				if served.Alloc[i] != cold2.Alloc[i] {
					t.Fatalf("cache-served allocation diverges on pass %d: seed=%d p=%d n1=%d n2=%d proc=%d served=%d cold=%d",
						pass, seed, p, n1, n2, i, served.Alloc[i], cold2.Alloc[i])
				}
			}
		}
	})
}
