package plancache

import (
	"heteropart/internal/core"
)

// Persistence surface of the cache: the store (internal/store) snapshots
// cache contents and replays them into a fresh cache after a restart, and
// taps the cache for its write-ahead log. Records carry the cache key in
// its exported form (model fingerprint, n, algorithm, options hash) plus
// the full Result, so an imported plan is served bit-identically to the one
// the pre-crash process computed.

// PlanRecord is one cached plan in exportable form.
type PlanRecord struct {
	Model   uint64         // speed.Fingerprint of the cluster model
	N       int64          // problem size
	Algo    core.Algorithm // partitioning algorithm
	OptsKey uint64         // core.OptionsKey of the option list
	Slope   float64        // Result.Slope
	Alloc   core.Allocation
	Stats   core.Stats
}

// Valid reports whether the record can be served as a correct plan: the
// allocation must be non-empty and sum exactly to N. Import and the store's
// replay both gate on it — a corrupted or stale record is dropped, never
// served.
func (r PlanRecord) Valid() bool {
	if len(r.Alloc) == 0 || r.N < 0 {
		return false
	}
	var sum int64
	for _, x := range r.Alloc {
		if x < 0 {
			return false
		}
		sum += x
	}
	return sum == r.N
}

// HintRecord is one warm-start hint in exportable form.
type HintRecord struct {
	Model uint64
	N     int64
	Slope float64
}

// SetInsertTap installs fn to be called after every admitted insertion with
// the inserted plan (its Alloc is a private copy). The tap runs on the
// computing goroutine outside any cache lock, only on the miss path —
// exact hits never see it — so a persistence layer can append a WAL record
// without touching the hot path. Install taps before serving traffic; a nil
// fn removes the tap.
func (c *Cache) SetInsertTap(fn func(PlanRecord)) {
	if fn == nil {
		c.insertTap.Store(nil)
		return
	}
	c.insertTap.Store(&fn)
}

// SetInvalidateTap installs fn to be called after every model invalidation
// with the invalidated fingerprint, outside any cache lock. A nil fn
// removes the tap.
func (c *Cache) SetInvalidateTap(fn func(model uint64)) {
	if fn == nil {
		c.invalidateTap.Store(nil)
		return
	}
	c.invalidateTap.Store(&fn)
}

// Export snapshots the cache contents: every resident plan (least recently
// used first, so replaying them in order re-creates the LRU order) and
// every warm-start hint. Allocations are private copies.
func (c *Cache) Export() ([]PlanRecord, []HintRecord) {
	var plans []PlanRecord
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for e := sh.tail; e != nil; e = e.prev {
			plans = append(plans, PlanRecord{
				Model: e.k.model, N: e.k.n, Algo: e.k.algo, OptsKey: e.k.opts,
				Slope: e.res.Slope, Alloc: append(core.Allocation(nil), e.res.Alloc...),
				Stats: e.res.Stats,
			})
		}
		sh.mu.Unlock()
	}
	var hints []HintRecord
	c.warm.mu.Lock()
	for model, hs := range c.warm.models {
		for _, h := range hs {
			hints = append(hints, HintRecord{Model: model, N: h.n, Slope: h.slope})
		}
	}
	c.warm.mu.Unlock()
	return plans, hints
}

// Import seeds the cache with previously exported plans and hints,
// returning how many plans were installed. Records failing Valid and
// duplicates of resident entries are skipped. Imported plans bypass the
// doorkeeper (they were admitted by the previous process) and do not fire
// the insert tap (the store already has them).
func (c *Cache) Import(plans []PlanRecord, hints []HintRecord) int {
	var installed int
	for _, r := range plans {
		if !r.Valid() {
			continue
		}
		k := key{model: r.Model, n: r.N, algo: r.Algo, opts: r.OptsKey}
		res := core.Result{
			Slope: r.Slope,
			Alloc: append(core.Allocation(nil), r.Alloc...),
			Stats: r.Stats,
		}
		sh := &c.shards[k.hash()&(numShards-1)]
		sh.mu.Lock()
		evicted, inserted := sh.insert(k, res)
		sh.mu.Unlock()
		c.evictions.Add(evicted)
		if inserted {
			installed++
		}
	}
	for _, h := range hints {
		if h.N > 0 {
			c.rememberHint(h.Model, h.N, h.Slope)
		}
	}
	return installed
}
