package plancache

import (
	"sync"
	"testing"

	"heteropart/internal/core"
	"heteropart/internal/speed"
)

// testCluster builds PWL speed functions from sampled analytic curves so
// the cache exercises the analytic ray-intersection fast path.
func testCluster(p int, seed uint32) []speed.Function {
	fns := make([]speed.Function, p)
	s := seed
	for i := range fns {
		s = s*1664525 + 1013904223
		peak := 1e7 * (1 + float64(s%900)/100)
		s = s*1664525 + 1013904223
		paging := 1e7 * (1 + float64(s%50))
		a := &speed.Analytic{
			Peak: peak, HalfRise: 1e3, CacheEdge: 1e5, CacheDecay: 0.8,
			PagingPoint: paging, PagingWidth: paging / 5, PagingFloor: 0.02,
			Max: 2e9,
		}
		pts := make([]speed.Point, 0, 12)
		for x := 1e3; x < a.Max; x *= 8 {
			pts = append(pts, speed.Point{X: x, Y: a.Eval(x)})
		}
		pts = append(pts, speed.Point{X: a.Max, Y: a.Eval(a.Max)})
		fns[i] = speed.MustPiecewiseLinear(speed.EnforceShape(pts))
	}
	return fns
}

func TestCacheHitReturnsIdenticalPlan(t *testing.T) {
	c := New(0)
	fns := testCluster(12, 1)
	first, err := c.Get(core.AlgoCombined, 1_000_000, fns)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Get(core.AlgoCombined, 1_000_000, fns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Alloc {
		if first.Alloc[i] != second.Alloc[i] {
			t.Fatalf("proc %d: %d != %d", i, first.Alloc[i], second.Alloc[i])
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
	// Mutating the returned plan must not corrupt the cache.
	second.Alloc[0] = -999
	third, err := c.Get(core.AlgoCombined, 1_000_000, fns)
	if err != nil {
		t.Fatal(err)
	}
	if third.Alloc[0] != first.Alloc[0] {
		t.Fatal("cached plan was mutated through a returned copy")
	}
}

func TestCacheKeying(t *testing.T) {
	c := New(0)
	fns := testCluster(8, 2)
	other := testCluster(8, 3)
	base, err := c.Get(core.AlgoCombined, 500_000, fns)
	if err != nil {
		t.Fatal(err)
	}
	// Different n, algorithm, options, and model must all miss.
	if _, err := c.Get(core.AlgoCombined, 500_001, fns); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(core.AlgoBasic, 500_000, fns); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(core.AlgoCombined, 500_000, fns, core.WithoutFineTune()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(core.AlgoCombined, 500_000, other); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 5 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 5 distinct misses", st)
	}
	// A rebuilt (value-identical) model slice must hit.
	rebuilt := testCluster(8, 2)
	again, err := c.Get(core.AlgoCombined, 500_000, rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("rebuilt model missed: %+v", st)
	}
	for i := range base.Alloc {
		if base.Alloc[i] != again.Alloc[i] {
			t.Fatalf("proc %d differs after rebuild", i)
		}
	}
}

func TestWarmStartServedPlansBitIdentical(t *testing.T) {
	c := New(0)
	fns := testCluster(16, 4)
	// Populate hints across a range of sizes, then request in-between
	// sizes; every plan must equal a cold Combined run exactly.
	for n := int64(1_000_000); n <= 16_000_000; n *= 2 {
		if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
			t.Fatal(err)
		}
	}
	for n := int64(1_100_000); n <= 15_000_000; n = n * 3 / 2 {
		got, err := c.Get(core.AlgoCombined, n, fns)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := core.Combined(n, fns)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cold.Alloc {
			if got.Alloc[i] != cold.Alloc[i] {
				t.Fatalf("n=%d proc %d: cached=%d cold=%d", n, i, got.Alloc[i], cold.Alloc[i])
			}
		}
	}
	if st := c.Stats(); st.WarmStarts == 0 {
		t.Fatalf("no warm starts recorded: %+v", st)
	}
}

func TestSingleflightSharesComputation(t *testing.T) {
	c := New(0)
	fns := testCluster(32, 5)
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]core.Result, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = c.Get(core.AlgoCombined, 9_000_000, fns)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		for i := range results[0].Alloc {
			if results[g].Alloc[i] != results[0].Alloc[i] {
				t.Fatalf("goroutine %d diverges at proc %d", g, i)
			}
		}
	}
	st := c.Stats()
	if st.Misses+st.Shared+st.Hits != goroutines {
		t.Fatalf("counters do not add up: %+v", st)
	}
	if st.Misses == goroutines {
		t.Fatalf("no sharing at all: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(numShards) // one entry per shard
	fns := testCluster(4, 6)
	for n := int64(10_000); n < 10_000+200; n++ {
		if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Size > numShards {
		t.Fatalf("size %d exceeds capacity %d", st.Size, numShards)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(0)
	fns := testCluster(8, 7)
	other := testCluster(8, 8)
	for n := int64(100_000); n <= 400_000; n += 100_000 {
		if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(core.AlgoCombined, n, other); err != nil {
			t.Fatal(err)
		}
	}
	dropped := c.Invalidate(fns)
	if dropped != 4 {
		t.Fatalf("dropped %d plans, want 4", dropped)
	}
	st := c.Stats()
	if st.Size != 4 {
		t.Fatalf("size %d after invalidate, want 4 (other model intact)", st.Size)
	}
	// The invalidated model recomputes; the other still hits.
	if _, err := c.Get(core.AlgoCombined, 100_000, fns); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(core.AlgoCombined, 100_000, other); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Hits != st.Hits+1 || after.Misses != st.Misses+1 {
		t.Fatalf("post-invalidate stats wrong: %+v -> %+v", st, after)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(0)
	fns := testCluster(4, 9)
	// Infeasible n: errors must propagate and not poison the cache.
	if _, err := c.Get(core.AlgoCombined, 1<<62, fns); err == nil {
		t.Fatal("expected infeasibility error")
	}
	if _, err := c.Get(core.AlgoCombined, 1<<62, fns); err == nil {
		t.Fatal("expected infeasibility error on retry")
	}
	st := c.Stats()
	if st.Size != 0 {
		t.Fatalf("error cached: %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("errors should recompute every time: %+v", st)
	}
}

// TestConcurrentHammer drives the cache from many goroutines across
// overlapping models, sizes, and invalidations; run with -race.
func TestConcurrentHammer(t *testing.T) {
	c := New(64)
	models := [][]speed.Function{
		testCluster(6, 10), testCluster(6, 11), testCluster(6, 12),
	}
	colds := make(map[int]map[int64]core.Allocation)
	sizes := []int64{50_000, 60_000, 70_000, 80_000, 90_000}
	for mi, m := range models {
		colds[mi] = make(map[int64]core.Allocation)
		for _, n := range sizes {
			res, err := core.Combined(n, m)
			if err != nil {
				t.Fatal(err)
			}
			colds[mi][n] = res.Alloc
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint32(g + 1)
			for i := 0; i < 300; i++ {
				rng = rng*1664525 + 1013904223
				mi := int(rng % uint32(len(models)))
				rng = rng*1664525 + 1013904223
				n := sizes[rng%uint32(len(sizes))]
				if rng%97 == 0 {
					c.Invalidate(models[mi])
					continue
				}
				got, err := c.Get(core.AlgoCombined, n, models[mi])
				if err != nil {
					t.Error(err)
					return
				}
				want := colds[mi][n]
				for j := range want {
					if got.Alloc[j] != want[j] {
						t.Errorf("model %d n=%d proc %d: %d != %d", mi, n, j, got.Alloc[j], want[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
