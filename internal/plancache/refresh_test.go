package plancache

import (
	"testing"

	"heteropart/internal/core"
	"heteropart/internal/speed"
)

// refreshCluster builds p piecewise linear processors with knots at fixed
// decades, so a tail-knot drift provably changes Eval only above 1e7 —
// small plans survive a refresh, billion-element ones cannot.
func refreshCluster(p int) []speed.Function {
	fns := make([]speed.Function, p)
	for i := range fns {
		base := 1e8 * (1 + 0.13*float64(i))
		fns[i] = speed.MustPiecewiseLinear(speed.EnforceShape([]speed.Point{
			{X: 1e3, Y: base},
			{X: 1e5, Y: base * 0.97},
			{X: 1e7, Y: base * 0.9},
			{X: 1e9, Y: base * 0.6},
		}))
	}
	return fns
}

// driftProc replaces one processor with a copy whose tail knot slowed down.
func driftProc(fns []speed.Function, proc int) []speed.Function {
	pts := append([]speed.Point(nil), fns[proc].(*speed.PiecewiseLinear).Points()...)
	pts[len(pts)-1].Y *= 0.5
	out := append([]speed.Function(nil), fns...)
	out[proc] = speed.MustPiecewiseLinear(speed.EnforceShape(pts))
	return out
}

func TestDeltaRefreshSelectiveSurvival(t *testing.T) {
	fns := refreshCluster(8)
	const proc = 3
	newFns := driftProc(fns, proc)
	sizes := []int64{40_000, 200_000, 1_000_000, 3_000_000, 900_000_000, 2_500_000_000, 6_000_000_000}

	c := New(0)
	allocs := make(map[int64]core.Allocation, len(sizes))
	for _, n := range sizes {
		res, err := c.Get(core.AlgoCombined, n, fns)
		if err != nil {
			t.Fatalf("populate n=%d: %v", n, err)
		}
		allocs[n] = res.Alloc
	}
	wantSurvive := make(map[int64]bool, len(sizes))
	nSurvive := 0
	for n, a := range allocs {
		ok := SurvivesProc(a[proc], fns[proc], newFns[proc])
		wantSurvive[n] = ok
		if ok {
			nSurvive++
		}
	}
	if nSurvive == 0 || nSurvive == len(sizes) {
		t.Fatalf("degenerate drift scenario: %d/%d survive", nSurvive, len(sizes))
	}

	kept, dropped := c.Refresh(fns, newFns)
	if kept != nSurvive || kept+dropped != len(sizes) {
		t.Fatalf("Refresh kept=%d dropped=%d, want kept=%d dropped=%d", kept, dropped, nSurvive, len(sizes)-nSurvive)
	}
	st := c.Stats()
	if st.Refreshes != 1 || st.RefreshKept != uint64(kept) || st.RefreshDropped != uint64(dropped) {
		t.Fatalf("refresh counters: %+v", st)
	}

	// Every size — survivor or not — must now serve the cold answer for
	// the NEW model bit-identically; survivors without recomputing.
	for _, n := range sizes {
		cold, err := core.Combined(n, newFns)
		if err != nil {
			t.Fatalf("cold Combined(n=%d, new): %v", n, err)
		}
		res, tier, err := c.GetTier(core.AlgoCombined, n, newFns)
		if err != nil {
			t.Fatalf("Get(n=%d, new): %v", n, err)
		}
		if wantSurvive[n] && tier != TierHit {
			t.Fatalf("n=%d survived the refresh but served as tier %d, want hit", n, tier)
		}
		if !wantSurvive[n] && tier != TierMiss {
			t.Fatalf("n=%d was dropped but served as tier %d, want miss", n, tier)
		}
		for i := range cold.Alloc {
			if res.Alloc[i] != cold.Alloc[i] {
				t.Fatalf("n=%d proc=%d: served %d, cold %d (survive=%v)", n, i, res.Alloc[i], cold.Alloc[i], wantSurvive[n])
			}
		}
	}
	// The old model's entries are gone.
	if _, tier, err := c.GetTier(core.AlgoCombined, sizes[0], fns); err != nil || tier != TierMiss {
		t.Fatalf("old model still cached after refresh (tier %d, err %v)", tier, err)
	}
}

func TestDeltaRefreshLengthChangeInvalidatesAll(t *testing.T) {
	fns := refreshCluster(6)
	sizes := []int64{100_000, 1_000_000}
	c := New(0)
	for _, n := range sizes {
		if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
			t.Fatal(err)
		}
	}
	kept, dropped := c.Refresh(fns, refreshCluster(7))
	if kept != 0 || dropped != len(sizes) {
		t.Fatalf("length change: kept=%d dropped=%d, want 0/%d", kept, dropped, len(sizes))
	}
	if _, tier, _ := c.GetTier(core.AlgoCombined, sizes[0], fns); tier != TierMiss {
		t.Fatalf("old entries survived a processor-count change")
	}
}

func TestDeltaRefreshNoChange(t *testing.T) {
	fns := refreshCluster(5)
	c := New(0)
	if _, err := c.Get(core.AlgoCombined, 1_000_000, fns); err != nil {
		t.Fatal(err)
	}
	same := append([]speed.Function(nil), fns...)
	if kept, dropped := c.Refresh(fns, same); kept != 0 || dropped != 0 {
		t.Fatalf("identical model refresh moved plans: kept=%d dropped=%d", kept, dropped)
	}
	if st := c.Stats(); st.Refreshes != 0 {
		t.Fatalf("no-op refresh counted: %+v", st)
	}
	if _, tier, _ := c.GetTier(core.AlgoCombined, 1_000_000, fns); tier != TierHit {
		t.Fatal("entry lost by no-op refresh")
	}
}

// TestDeltaRefreshReadOnly: a replica's cache is read-only, but Refresh is
// part of the replication write path (like Import) and must still migrate.
func TestDeltaRefreshReadOnly(t *testing.T) {
	fns := refreshCluster(8)
	const proc = 3
	newFns := driftProc(fns, proc)
	sizes := []int64{40_000, 200_000, 6_000_000_000}

	c := New(0)
	for _, n := range sizes {
		if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
			t.Fatal(err)
		}
	}
	c.SetReadOnly(true)
	kept, dropped := c.Refresh(fns, newFns)
	if kept == 0 || kept+dropped != len(sizes) {
		t.Fatalf("read-only refresh: kept=%d dropped=%d over %d plans", kept, dropped, len(sizes))
	}
	// A surviving plan serves as a hit under the new fingerprint even
	// though the cache admits nothing new.
	if _, tier, err := c.GetTier(core.AlgoCombined, 40_000, newFns); err != nil || tier != TierHit {
		t.Fatalf("survivor not served from read-only cache: tier=%d err=%v", tier, err)
	}
}

// FuzzDeltaRefreshBitIdentical is the refresh correctness contract: for a
// random cluster, a random one-processor perturbation and random sizes,
// every plan served after Refresh — kept or recomputed — must equal a cold
// compute under the new model bit for bit.
func FuzzDeltaRefreshBitIdentical(f *testing.F) {
	f.Add(uint32(1), uint8(4), uint8(0), uint8(40), uint32(100_000), uint32(900_000))
	f.Add(uint32(7), uint8(9), uint8(3), uint8(255), uint32(50_000), uint32(4_000_000))
	f.Add(uint32(42), uint8(16), uint8(12), uint8(128), uint32(1_000_000), uint32(1_000_001))
	f.Add(uint32(99), uint8(31), uint8(30), uint8(1), uint32(77_777), uint32(9_999_999))
	f.Add(uint32(1234), uint8(2), uint8(1), uint8(200), uint32(3_000_000), uint32(12))
	f.Fuzz(func(t *testing.T, seed uint32, pRaw, procRaw, scaleRaw uint8, n1Raw, n2Raw uint32) {
		p := 2 + int(pRaw%31)
		fns := randomPWLCluster(p, seed)
		proc := int(procRaw) % p

		// Perturb one knot of one processor by a fuzz-chosen factor; the
		// repaired shape may or may not actually change the fingerprint,
		// and may change caps — Refresh must cope with all of it.
		pts := append([]speed.Point(nil), fns[proc].(*speed.PiecewiseLinear).Points()...)
		factor := 0.3 + 1.4*float64(scaleRaw)/255
		pts[len(pts)-1].Y *= factor
		newFns := append([]speed.Function(nil), fns...)
		newFns[proc] = speed.MustPiecewiseLinear(speed.EnforceShape(pts))

		var capacity int64
		for _, fn := range fns {
			capacity += int64(fn.MaxSize())
		}
		n1 := 1 + int64(n1Raw)%(capacity/2)
		n2 := 1 + int64(n2Raw)%(capacity/2)

		c := New(0)
		for _, n := range []int64{n1, n2} {
			if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
				t.Skip() // degenerate random model
			}
		}
		c.Refresh(fns, newFns)
		for pass := 0; pass < 2; pass++ {
			for _, n := range []int64{n1, n2} {
				cold, err := core.Combined(n, newFns)
				if err != nil {
					t.Skip()
				}
				res, err := c.Get(core.AlgoCombined, n, newFns)
				if err != nil {
					t.Fatalf("Get after refresh failed where cold succeeded: %v", err)
				}
				for i := range cold.Alloc {
					if res.Alloc[i] != cold.Alloc[i] {
						t.Fatalf("refresh diverges: seed=%d p=%d proc=%d factor=%v n=%d pass=%d i=%d got=%d cold=%d",
							seed, p, proc, factor, n, pass, i, res.Alloc[i], cold.Alloc[i])
					}
				}
			}
		}
	})
}
