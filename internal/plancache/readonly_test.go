package plancache

import (
	"testing"

	"heteropart/internal/core"
	"heteropart/internal/speed"
)

func TestReadOnlySuspendsAdmissionButNotCorrectness(t *testing.T) {
	c := New(0)
	c.SetReadOnly(true)
	fns := testCluster(8, 41)

	res, tier, err := c.GetTier(core.AlgoCombined, 1_000_000, fns)
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierMiss {
		t.Fatalf("tier %v, want miss", tier)
	}
	if got := res.Alloc.Sum(); got != 1_000_000 {
		t.Fatalf("read-only miss returned a wrong plan: sum %d", got)
	}
	// Nothing was admitted, no hint remembered: the same ask misses again
	// and computes cold (no warm start).
	_, tier2, err := c.GetTier(core.AlgoCombined, 1_000_000, fns)
	if err != nil {
		t.Fatal(err)
	}
	if tier2 != TierMiss {
		t.Fatalf("read-only cache admitted a plan (second ask: %v)", tier2)
	}
	st := c.Stats()
	if st.Admitted != 0 || st.Size != 0 || st.WarmStarts != 0 || !st.ReadOnly {
		t.Fatalf("read-only cache leaked state: %+v", st)
	}
}

func TestReadOnlyTapsNeverFire(t *testing.T) {
	c := New(0)
	var taps int
	c.SetInsertTap(func(PlanRecord) { taps++ })
	c.SetReadOnly(true)
	fns := testCluster(6, 42)
	if _, err := c.Get(core.AlgoCombined, 2_000_000, fns); err != nil {
		t.Fatal(err)
	}
	if taps != 0 {
		t.Fatalf("insert tap fired %d times on a read-only cache", taps)
	}
}

func TestReadOnlyImportStillWrites(t *testing.T) {
	c := New(0)
	c.SetReadOnly(true)
	fns := testCluster(8, 43)
	fp := speed.Fingerprint(fns)

	// Import is the replication feed: it must admit records even when the
	// local miss path is sealed.
	res, err := core.Combined(3_000_000, fns)
	if err != nil {
		t.Fatal(err)
	}
	n := c.Import([]PlanRecord{{
		Model: fp, N: 3_000_000, Algo: core.AlgoCombined, OptsKey: core.OptionsKey(),
		Slope: res.Slope, Alloc: res.Alloc, Stats: res.Stats,
	}}, []HintRecord{{Model: fp, N: 3_000_000, Slope: res.Slope}})
	if n != 1 {
		t.Fatalf("Import admitted %d, want 1", n)
	}
	got, tier, err := c.GetTier(core.AlgoCombined, 3_000_000, fns)
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierHit {
		t.Fatalf("imported plan not served as hit (tier %v)", tier)
	}
	for i := range got.Alloc {
		if got.Alloc[i] != res.Alloc[i] {
			t.Fatalf("hit not bit-identical at %d: %d vs %d", i, got.Alloc[i], res.Alloc[i])
		}
	}

	// Invalidate also still works — it is the other half of the feed.
	if dropped := c.InvalidateFingerprint(fp); dropped != 1 {
		t.Fatalf("InvalidateFingerprint dropped %d, want 1", dropped)
	}
}

func TestResetDropsEverythingSilently(t *testing.T) {
	c := New(0)
	var invalidations int
	c.SetInvalidateTap(func(uint64) { invalidations++ })
	fns := testCluster(8, 44)
	if _, err := c.Get(core.AlgoCombined, 1_000_000, fns); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Size == 0 {
		t.Fatal("nothing cached to reset")
	}
	c.Reset()
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("Reset left %d entries", st.Size)
	}
	if invalidations != 0 {
		t.Fatalf("Reset fired the invalidate tap %d times", invalidations)
	}
	// The warm index is gone too: the next miss computes cold.
	if _, err := c.Get(core.AlgoCombined, 1_100_000, fns); err != nil {
		t.Fatal(err)
	}
	if ws := c.Stats().WarmStarts; ws != 0 {
		t.Fatalf("warm index survived Reset (%d warm starts)", ws)
	}
}
