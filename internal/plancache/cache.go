// Package plancache caches partition plans. The partitioner is cheap but
// not free, and the dominant production workload — dynamic repartitioning
// loops and per-request partition decisions — asks for the same or nearly
// the same plan over and over. The cache serves three tiers:
//
//   - exact hit: the plan for (cluster-model fingerprint, n, options) was
//     computed before and is returned as a copy, no geometry at all;
//   - shared miss: another goroutine is computing exactly this plan right
//     now; the request waits for that single computation (singleflight)
//     instead of duplicating it;
//   - warm miss: no plan for this n, but the same cluster has plans for
//     nearby sizes; the nearest one's optimal-ray slope seeds the bisection
//     (core.WithWarmStart), collapsing convergence to a few steps. The
//     result is bit-identical to a cold run, so serving it from a warm
//     start is indistinguishable from recomputing.
//
// Models are identified by speed.Fingerprint, which hashes function
// values, not object identity — callers that rebuild their model slice per
// request (as mm.ExecuteAdaptive does) still hit. When a model drifts
// (speed.Drift flags it stale), Invalidate drops every plan and warm hint
// derived from the old fingerprint.
//
// The cache is sharded by key hash: each shard has its own mutex, LRU list
// and in-flight table, so concurrent requests for different plans do not
// serialize. Sharding includes n, not just the model, because the expected
// workload is many sizes against one cluster model.
package plancache

import (
	"sort"
	"sync"
	"sync/atomic"

	"heteropart/internal/core"
	"heteropart/internal/speed"
)

const (
	// numShards is a power of two so shard selection is a mask.
	numShards = 16
	// DefaultCapacity is the default total number of cached plans.
	DefaultCapacity = 4096
	// doorkeeperScale sizes each shard's doorkeeper generation relative to
	// its LRU capacity: remembering 8× more once-seen keys than resident
	// plans lets a second miss arrive well after the first even under churn.
	doorkeeperScale = 8
	// warmHintsPerModel bounds the per-model warm-start hint index.
	warmHintsPerModel = 64
	// warmSpreadFloor keeps the warm bracket open even for an exact-n hint
	// from a different options key.
	warmSpreadFloor = 1e-3
	// warmSpreadCap bounds the bracket for far hints; beyond ±50 % the
	// bracket rarely lands inside the initial region anyway.
	warmSpreadCap = 0.5
)

// key identifies one plan.
type key struct {
	model uint64 // speed.Fingerprint of the cluster model
	n     int64
	algo  core.Algorithm
	opts  uint64 // core.OptionsKey of the option list
}

// hash mixes the key fields into a shard/index hash (splitmix64 over the
// xor-fold of the fields).
func (k key) hash() uint64 {
	x := k.model ^ uint64(k.n)*0x9e3779b97f4a7c15 ^ uint64(k.algo)<<32 ^ k.opts
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// entry is one cached plan in a shard's LRU list.
type entry struct {
	k          key
	res        core.Result
	prev, next *entry
}

// call is an in-flight computation other requests can wait on. done is
// created lazily, under the shard lock, by the first waiter — the common
// uncontended miss never allocates a channel — and the computing goroutine
// closes it only if it exists. A call that attracted no waiter is recycled
// through the call pool; one that did is abandoned to its waiters (they
// read res/err at their leisure after done closes).
type call struct {
	done chan struct{}
	res  core.Result
	err  error
}

// doorkeeper is a two-generation membership filter implementing the cache
// admission policy: a plan is only inserted once its key has missed before,
// so one-shot sizes never displace resident plans. Generations rotate when
// the current one fills, bounding memory while keeping recent history.
type doorkeeper struct {
	cap       int
	cur, prev map[uint64]struct{}
}

func (d *doorkeeper) seen(h uint64) bool {
	if _, ok := d.cur[h]; ok {
		return true
	}
	_, ok := d.prev[h]
	return ok
}

func (d *doorkeeper) remember(h uint64) {
	if len(d.cur) >= d.cap {
		d.prev, d.cur = d.cur, make(map[uint64]struct{}, d.cap)
	}
	d.cur[h] = struct{}{}
}

// shard is an independently locked slice of the cache.
type shard struct {
	mu       sync.Mutex
	entries  map[key]*entry
	inflight map[key]*call
	// Intrusive LRU list: head is most recent, tail least.
	head, tail *entry
	cap        int
	// door is nil unless the admission policy is enabled.
	door *doorkeeper
}

// hint is one warm-start seed: the optimal-ray slope for size n.
type hint struct {
	n     int64
	slope float64
}

// warmIndex holds per-model hints sorted by n.
type warmIndex struct {
	mu     sync.Mutex
	models map[uint64][]hint
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits          uint64 // exact hits served from the LRU
	Misses        uint64 // plans computed (cold or warm)
	WarmStarts    uint64 // misses that ran with a warm-start hint
	Shared        uint64 // requests that waited on another's computation
	Evictions     uint64 // entries dropped by LRU pressure
	Invalidations uint64 // entries dropped by Invalidate
	Admitted      uint64 // computed plans inserted into the LRU
	Rejected      uint64 // computed plans the doorkeeper kept out (first miss)

	// Delta-refresh counters (see Refresh): a one-processor model refresh
	// re-keys the plans whose allocation provably cannot change and drops
	// only the rest, instead of invalidating the whole model.
	Refreshes      uint64 // model refreshes applied through the delta path
	RefreshKept    uint64 // plans that survived refreshes (re-keyed, not recomputed)
	RefreshDropped uint64 // plans a refresh invalidated (allocation could change)

	Size     int  // entries currently cached
	ReadOnly bool // admission suspended (replica mirroring a primary)
}

// HitRate returns the fraction of requests served without computing.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Shared
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// Config tunes a Cache built with NewWithConfig.
type Config struct {
	// Capacity is the total number of cached plans (DefaultCapacity when
	// <= 0).
	Capacity int
	// Doorkeeper enables the admission policy: a plan is only inserted on
	// its second miss, so one-shot sizes pass through without evicting
	// anything. Warm-start hints are still recorded on every computed miss,
	// so a rejected size's neighbors keep seeding the bisection.
	Doorkeeper bool
}

// Cache is a sharded LRU of partition plans. The zero value is not usable;
// call New.
type Cache struct {
	shards [numShards]shard
	warm   warmIndex

	hits           atomic.Uint64
	misses         atomic.Uint64
	warmStarts     atomic.Uint64
	shared         atomic.Uint64
	evictions      atomic.Uint64
	invalidations  atomic.Uint64
	admitted       atomic.Uint64
	rejected       atomic.Uint64
	refreshes      atomic.Uint64
	refreshKept    atomic.Uint64
	refreshDropped atomic.Uint64

	// insertTap and invalidateTap observe admitted insertions and model
	// invalidations (see SetInsertTap); loaded atomically so taps can be
	// installed before traffic without locking the hot path.
	insertTap     atomic.Pointer[func(PlanRecord)]
	invalidateTap atomic.Pointer[func(uint64)]

	// readOnly suspends admission: misses still compute and return, but
	// nothing is inserted, no doorkeeper state advances, no taps fire and
	// no hints are remembered. Import and Invalidate are unaffected — they
	// ARE the write path while a replica mirrors its primary.
	readOnly atomic.Bool

	// scratch pools the per-miss compute state (partitioner, option slice,
	// warm-start seed fields); calls pools singleflight call structs that
	// never attracted a waiter. Together they keep the near-miss path at a
	// couple of allocations per computed plan.
	scratch sync.Pool
	calls   sync.Pool
}

// missScratch bundles what the miss path would otherwise allocate per
// request: the partitioner, a reusable option slice, and a pre-built
// late-bound warm-start option (core.WithWarmStartVar) that reads the
// slope/spread fields at apply time, so seeding a warm start costs no
// closure allocation.
type missScratch struct {
	p      *core.Partitioner
	opts   []core.Option
	slope  float64
	spread float64
	warm   core.Option
}

// New returns a cache holding up to capacity plans (DefaultCapacity when
// capacity <= 0), spread over the shards, with the admission policy off —
// every computed plan is inserted, the behavior embedded callers expect.
func New(capacity int) *Cache {
	return NewWithConfig(Config{Capacity: capacity})
}

// NewWithConfig returns a cache tuned by cfg.
func NewWithConfig(cfg Config) *Cache {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	perShard := capacity / numShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[key]*entry)
		c.shards[i].inflight = make(map[key]*call)
		c.shards[i].cap = perShard
		if cfg.Doorkeeper {
			dcap := perShard * doorkeeperScale
			if dcap < 64 {
				dcap = 64
			}
			c.shards[i].door = &doorkeeper{
				cap: dcap,
				cur: make(map[uint64]struct{}),
			}
		}
	}
	c.warm.models = make(map[uint64][]hint)
	c.scratch.New = func() any {
		sc := &missScratch{p: core.NewPartitioner()}
		sc.warm = core.WithWarmStartVar(&sc.slope, &sc.spread)
		return sc
	}
	c.calls.New = func() any { return new(call) }
	return c
}

// Tier classifies how a request was served.
type Tier uint8

const (
	// TierMiss means the plan was computed (cold or warm-started).
	TierMiss Tier = iota
	// TierHit means the plan was served from the LRU.
	TierHit
	// TierShared means the request waited on another's in-flight computation.
	TierShared
)

// PeekInto probes for an exact hit without computing on a miss, appending
// the cached allocation to dst (which the caller reuses across calls —
// with enough spare capacity the probe allocates nothing). model is the
// precomputed speed.Fingerprint of the cluster. On a hit the returned
// Result's Alloc is dst's appended tail and the entry is refreshed in the
// LRU, indistinguishable from a GetTier hit; on a miss nothing changes —
// no doorkeeper state, no counters — so a caller falling back to the
// engine costs one extra map lookup, not skewed stats.
func (c *Cache) PeekInto(dst core.Allocation, model uint64, algo core.Algorithm, n int64, opts ...core.Option) (core.Allocation, core.Result, bool) {
	k := key{model: model, n: n, algo: algo, opts: core.OptionsKey(opts...)}
	sh := &c.shards[k.hash()&(numShards-1)]

	sh.mu.Lock()
	e, ok := sh.entries[k]
	if !ok {
		sh.mu.Unlock()
		return dst, core.Result{}, false
	}
	sh.moveToFront(e)
	start := len(dst)
	dst = append(dst, e.res.Alloc...)
	res := e.res
	sh.mu.Unlock()
	res.Alloc = dst[start:]
	c.hits.Add(1)
	return dst, res, true
}

// Get returns the plan for running algo over n elements on the cluster
// described by fns with the given options, computing and caching it on a
// miss. The returned Result owns its Alloc — callers may mutate it freely.
func (c *Cache) Get(algo core.Algorithm, n int64, fns []speed.Function, opts ...core.Option) (core.Result, error) {
	res, _, err := c.GetTier(algo, n, fns, opts...)
	return res, err
}

// GetTier is Get plus the serving tier of this particular request, for
// callers keeping their own hit-rate accounting (the serving engine reports
// per-algorithm rates from it).
func (c *Cache) GetTier(algo core.Algorithm, n int64, fns []speed.Function, opts ...core.Option) (core.Result, Tier, error) {
	return c.GetTierFP(speed.Fingerprint(fns), algo, n, fns, opts...)
}

// GetTierFP is GetTier with the cluster fingerprint precomputed by the
// caller — the serving path resolves models by fingerprint already, so
// re-hashing every speed function per request would be pure waste.
func (c *Cache) GetTierFP(model uint64, algo core.Algorithm, n int64, fns []speed.Function, opts ...core.Option) (core.Result, Tier, error) {
	k := key{model: model, n: n, algo: algo, opts: core.OptionsKey(opts...)}
	h := k.hash()
	sh := &c.shards[h&(numShards-1)]

	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		sh.moveToFront(e)
		res := copyResult(e.res)
		sh.mu.Unlock()
		c.hits.Add(1)
		return res, TierHit, nil
	}
	if cl, ok := sh.inflight[k]; ok {
		if cl.done == nil {
			cl.done = make(chan struct{})
		}
		done := cl.done
		sh.mu.Unlock()
		<-done
		c.shared.Add(1)
		if cl.err != nil {
			return core.Result{}, TierShared, cl.err
		}
		return copyResult(cl.res), TierShared, nil
	}
	cl := c.calls.Get().(*call)
	sh.inflight[k] = cl
	sh.mu.Unlock()

	// Publish the result into the call before taking the lock: a waiter
	// that registered during compute reads cl.res only after done closes,
	// and done closes after these writes.
	res, err := c.compute(k, n, fns, opts)
	cl.res, cl.err = res, err

	readOnly := c.readOnly.Load()
	var inserted, doorRejected bool
	sh.mu.Lock()
	delete(sh.inflight, k)
	done := cl.done
	if err == nil && !readOnly {
		if sh.door == nil || sh.door.seen(h) {
			var evicted uint64
			evicted, inserted = sh.insert(k, copyResult(res))
			c.evictions.Add(evicted)
		} else {
			sh.door.remember(h)
			doorRejected = true
		}
	}
	sh.mu.Unlock()
	if done != nil {
		// Waiters hold the call; closing hands it to them for good.
		close(done)
	} else {
		// No waiter ever saw this call (none can after the inflight
		// delete), so recycle it.
		cl.res, cl.err = core.Result{}, nil
		c.calls.Put(cl)
	}
	c.misses.Add(1)
	if err != nil {
		return core.Result{}, TierMiss, err
	}
	if inserted {
		c.admitted.Add(1)
		if tap := c.insertTap.Load(); tap != nil {
			(*tap)(PlanRecord{
				Model: k.model, N: n, Algo: algo, OptsKey: k.opts,
				Slope: res.Slope, Alloc: append(core.Allocation(nil), res.Alloc...),
				Stats: res.Stats,
			})
		}
	} else if doorRejected {
		c.rejected.Add(1)
	}
	if n > 0 && !readOnly {
		c.rememberHint(k.model, n, res.Slope)
	}
	return res, TierMiss, nil
}

// compute runs the partitioner for a miss, warm-started from the nearest
// cached hint for the same model when one exists.
func (c *Cache) compute(k key, n int64, fns []speed.Function, opts []core.Option) (core.Result, error) {
	sc := c.scratch.Get().(*missScratch)
	runOpts := opts
	if slope, spread, ok := c.warmHint(k.model, n); ok {
		sc.slope, sc.spread = slope, spread
		sc.opts = append(sc.opts[:0], opts...)
		sc.opts = append(sc.opts, sc.warm)
		runOpts = sc.opts
		c.warmStarts.Add(1)
	}
	dst := make(core.Allocation, len(fns))
	res, err := sc.p.PartitionInto(dst, k.algo, n, fns, runOpts...)
	for i := range sc.opts {
		sc.opts[i] = nil // release caller option references
	}
	sc.opts = sc.opts[:0]
	c.scratch.Put(sc)
	return res, err
}

// warmHint returns the slope of the nearest cached solution for the model
// and the bracket spread to search around it.
func (c *Cache) warmHint(model uint64, n int64) (slope, spread float64, ok bool) {
	c.warm.mu.Lock()
	hints := c.warm.models[model]
	if len(hints) == 0 {
		c.warm.mu.Unlock()
		return 0, 0, false
	}
	i := sort.Search(len(hints), func(i int) bool { return hints[i].n >= n })
	best := i
	if best == len(hints) || (i > 0 && n-hints[i-1].n < hints[i].n-n) {
		best = i - 1
	}
	h := hints[best]
	c.warm.mu.Unlock()
	if !(h.slope > 0) || h.n <= 0 {
		return 0, 0, false
	}
	// Relative distance in n maps to a relative slope bracket: the optimal
	// slope scales roughly like speed(n/p)/(n/p), so doubling the distance
	// doubles the bracket. The floor keeps the bracket open for exact-n
	// hints (different options) and the cap keeps far hints cheap.
	rel := float64(n-h.n) / float64(h.n)
	if rel < 0 {
		rel = -rel
	}
	spread = 2*rel + warmSpreadFloor
	if spread > warmSpreadCap {
		spread = warmSpreadCap
	}
	return h.slope, spread, true
}

// rememberHint records the optimal slope for (model, n), keeping the index
// bounded and sorted by n.
func (c *Cache) rememberHint(model uint64, n int64, slope float64) {
	if !(slope > 0) {
		return
	}
	c.warm.mu.Lock()
	defer c.warm.mu.Unlock()
	hints := c.warm.models[model]
	i := sort.Search(len(hints), func(i int) bool { return hints[i].n >= n })
	if i < len(hints) && hints[i].n == n {
		hints[i].slope = slope
		return
	}
	if len(hints) >= warmHintsPerModel {
		// Replace the neighbor instead of growing: nearby hints are nearly
		// interchangeable as warm-start seeds. sort.Search already proved
		// hints[i-1].n < n < hints[i].n (exact matches returned above), so
		// overwriting slot i — or the last slot when n lies past the end —
		// keeps the index sorted without a re-sort.
		if i == len(hints) {
			i--
		}
		hints[i] = hint{n: n, slope: slope}
		return
	}
	hints = append(hints, hint{})
	copy(hints[i+1:], hints[i:])
	hints[i] = hint{n: n, slope: slope}
	c.warm.models[model] = hints
}

// Invalidate drops every cached plan and warm hint for the cluster model
// described by fns. Call it when speed.Drift (or any other monitor) flags
// the model as stale; in-flight computations for the old model are left to
// finish and their results are still installed — callers race with them
// anyway, and the next Invalidate sweeps them out.
func (c *Cache) Invalidate(fns []speed.Function) int {
	return c.InvalidateFingerprint(speed.Fingerprint(fns))
}

// InvalidateFingerprint is Invalidate for a precomputed fingerprint.
func (c *Cache) InvalidateFingerprint(model uint64) int {
	var dropped int
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.model == model {
				sh.unlink(e)
				delete(sh.entries, k)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	c.warm.mu.Lock()
	delete(c.warm.models, model)
	c.warm.mu.Unlock()
	c.invalidations.Add(uint64(dropped))
	if tap := c.invalidateTap.Load(); tap != nil {
		(*tap)(model)
	}
	return dropped
}

// Reset drops every cached plan and warm hint without firing taps or
// counting invalidations — the mirror-rebuild primitive a replica uses
// after a snapshot handoff replaced its store's state wholesale (the
// handoff's contents are re-Imported right after). In-flight computations
// are left to finish; their results are simply not admitted into the
// post-reset cache until recomputed.
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[key]*entry)
		sh.head, sh.tail = nil, nil
		sh.mu.Unlock()
	}
	c.warm.mu.Lock()
	c.warm.models = make(map[uint64][]hint)
	c.warm.mu.Unlock()
}

// SetReadOnly toggles read-only admission. While set, misses still compute
// and return correct plans, but the cache's contents change only through
// Import and Invalidate — the replication feed — so a replica's cache stays
// a faithful mirror of its primary's instead of diverging on local traffic.
// Promotion flips it back off.
func (c *Cache) SetReadOnly(ro bool) { c.readOnly.Store(ro) }

// ReadOnly reports whether admission is suspended.
func (c *Cache) ReadOnly() bool { return c.readOnly.Load() }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		WarmStarts:    c.warmStarts.Load(),
		Shared:        c.shared.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Admitted:      c.admitted.Load(),
		Rejected:      c.rejected.Load(),
		ReadOnly:      c.readOnly.Load(),

		Refreshes:      c.refreshes.Load(),
		RefreshKept:    c.refreshKept.Load(),
		RefreshDropped: c.refreshDropped.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Size += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

// insert adds a fresh entry at the front, evicting from the tail when the
// shard is full; it returns the number of evictions and whether a new entry
// actually went in. Callers hold mu.
func (sh *shard) insert(k key, res core.Result) (uint64, bool) {
	if e, ok := sh.entries[k]; ok {
		// A concurrent computation of the same key finished first; results
		// are identical, keep the resident entry.
		sh.moveToFront(e)
		return 0, false
	}
	var evicted uint64
	var free *entry
	for len(sh.entries) >= sh.cap && sh.tail != nil {
		old := sh.tail
		sh.unlink(old)
		delete(sh.entries, old.k)
		free = old
		evicted++
	}
	// Reuse an evicted entry struct: once the shard is full, the steady
	// state inserts without allocating.
	e := free
	if e == nil {
		e = &entry{}
	}
	e.k, e.res = k, res
	sh.entries[k] = e
	sh.pushFront(e)
	return evicted, true
}

func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// copyResult deep-copies the allocation so cached plans are immune to
// caller mutation.
func copyResult(r core.Result) core.Result {
	out := r
	out.Alloc = append(core.Allocation(nil), r.Alloc...)
	return out
}
