package experiments

import (
	"fmt"

	"heteropart/internal/machine"
	"heteropart/internal/report"
)

// Fig1 regenerates Figure 1: the absolute speed of each of the Table 1
// computers as a function of problem size, for the three applications
// (ArrayOpsF, MatrixMultATLAS, MatrixMult), with the paging point P of
// each machine annotated. One table per application; speeds in MFlops.
func Fig1() ([]*report.Table, error) {
	ms := machine.Table1()
	var out []*report.Table

	// Matrix kernels: sweep the matrix size n.
	for _, k := range []machine.Kernel{machine.ArrayOpsF, machine.MatrixMultATLAS, machine.MatrixMult} {
		headers := []string{"size"}
		for _, m := range ms {
			headers = append(headers, m.Name+" (MFlops)")
		}
		t := report.New(fmt.Sprintf("Figure 1 — %s: absolute speed vs problem size", k.Name), headers...)
		sizes := fig1Sizes(k)
		for _, n := range sizes {
			row := []any{n}
			for _, m := range ms {
				f, err := m.FlopRate(k)
				if err != nil {
					return nil, err
				}
				row = append(row, f.Eval(k.Elements(n))/1e6)
			}
			t.AddRow(row...)
		}
		for _, m := range ms {
			f, err := m.FlopRate(k)
			if err != nil {
				return nil, err
			}
			t.AddNote("%s paging point P at %s elements", m.Name, report.FormatFloat(f.PagingPoint))
		}
		out = append(out, t)
	}
	return out, nil
}

// fig1Sizes returns the swept problem sizes per kernel (array lengths for
// ArrayOpsF, matrix sizes for the multiplication kernels).
func fig1Sizes(k machine.Kernel) []int {
	if k.Name == machine.ArrayOpsF.Name {
		sizes := make([]int, 0, 16)
		for n := 1 << 14; n <= 1<<28; n *= 2 {
			sizes = append(sizes, n)
		}
		return sizes
	}
	var sizes []int
	for n := 500; n <= 10000; n += 500 {
		sizes = append(sizes, n)
	}
	return sizes
}
