package experiments

import (
	"fmt"
	"strconv"

	"heteropart/internal/machine"
	"heteropart/internal/report"
)

// Fig1Charts renders the Figure 1 speed curves as ASCII charts, one per
// application, matching the layout of the paper's plots (speed in MFlops
// against problem size, log-scaled speed so the paging collapse is
// visible).
func Fig1Charts() ([]*report.Chart, error) {
	ms := machine.Table1()
	var out []*report.Chart
	for _, k := range []machine.Kernel{machine.ArrayOpsF, machine.MatrixMultATLAS, machine.MatrixMult} {
		c := report.NewChart(
			fmt.Sprintf("Figure 1 — %s: absolute speed vs problem size", k.Name),
			"problem size", "MFlops")
		c.LogY = true
		// The ArrayOpsF sweep doubles the size each step.
		c.LogX = k.Name == machine.ArrayOpsF.Name
		sizes := fig1Sizes(k)
		for _, m := range ms {
			f, err := m.FlopRate(k)
			if err != nil {
				return nil, err
			}
			xs := make([]float64, len(sizes))
			ys := make([]float64, len(sizes))
			for i, n := range sizes {
				xs[i] = float64(n)
				ys[i] = f.Eval(k.Elements(n)) / 1e6
			}
			if err := c.AddSeries(m.Name, xs, ys); err != nil {
				return nil, err
			}
		}
		out = append(out, c)
	}
	return out, nil
}

// Fig22Charts renders the Figure 22 speedup series as ASCII charts, one
// for matrix multiplication and one for LU factorization, from the already
// computed tables.
func Fig22Charts(mmNs, luNs []int) ([]*report.Chart, error) {
	a, err := Fig22a(mmNs)
	if err != nil {
		return nil, err
	}
	b, err := Fig22b(luNs, 0)
	if err != nil {
		return nil, err
	}
	var out []*report.Chart
	for _, src := range []struct {
		table  *report.Table
		title  string
		labels [2]string
	}{
		{a, "Figure 22(a) — matrix multiplication speedup over single-number model",
			[2]string{"single-number @ 500", "single-number @ 4000"}},
		{b, "Figure 22(b) — LU factorization speedup over single-number model",
			[2]string{"single-number @ 2000", "single-number @ 5000"}},
	} {
		c := report.NewChart(src.title, "matrix size n", "speedup")
		var xs, s1, s2 []float64
		for _, row := range src.table.Rows() {
			x, err := strconv.ParseFloat(row[0], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: bad n cell %q", row[0])
			}
			v1, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: bad speedup cell %q", row[3])
			}
			v2, err := strconv.ParseFloat(row[5], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: bad speedup cell %q", row[5])
			}
			xs = append(xs, x)
			s1 = append(s1, v1)
			s2 = append(s2, v2)
		}
		if err := c.AddSeries(src.labels[0], xs, s1); err != nil {
			return nil, err
		}
		if err := c.AddSeries(src.labels[1], xs, s2); err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
