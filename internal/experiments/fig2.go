package experiments

import (
	"fmt"

	"heteropart/internal/machine"
	"heteropart/internal/report"
)

// Fig2 regenerates Figure 2: the performance bands of MatrixMultATLAS on
// Comp1, Comp2 and Comp4 from Table 1. For each machine the table sweeps
// the matrix size and reports the band's lower and upper speed and its
// relative width — around 30–40 % at small sizes declining towards 5–8 %
// at the largest solvable size for the highly integrated machines.
func Fig2() ([]*report.Table, error) {
	k := machine.MatrixMultATLAS
	var out []*report.Table
	for _, name := range []string{"Comp1", "Comp2", "Comp4"} {
		m, ok := machine.ByName(machine.Table1(), name)
		if !ok {
			return nil, fmt.Errorf("experiments: missing machine %s", name)
		}
		band, err := m.Band(k)
		if err != nil {
			return nil, err
		}
		t := report.New(
			fmt.Sprintf("Figure 2 — performance band of MatrixMultATLAS on %s (integration: %s)", m.Name, m.Integration),
			"size", "lower (MFlops)", "mid (MFlops)", "upper (MFlops)", "width %")
		maxN := fig2MaxSize(m, k)
		for n := maxN / 10; n <= maxN; n += maxN / 10 {
			x := k.Elements(n)
			t.AddRow(n,
				band.Lower(x)/1e6,
				band.Mid().Eval(x)/1e6,
				band.Upper(x)/1e6,
				band.Width(x)*100,
			)
		}
		out = append(out, t)
	}
	return out, nil
}

// fig2MaxSize returns the largest matrix size solvable on the machine for
// the kernel (the domain limit converted back to a matrix size).
func fig2MaxSize(m machine.Machine, k machine.Kernel) int {
	f, err := m.FlopRate(k)
	if err != nil {
		return 1000
	}
	// elements = 3n² → n = √(max/3)
	n := 1
	for k.Elements(n*2) <= f.Max {
		n *= 2
	}
	for k.Elements(n+100) <= f.Max {
		n += 100
	}
	return n
}
