package experiments

import (
	"fmt"

	"heteropart/internal/apps/lu"
	"heteropart/internal/apps/mm"
	"heteropart/internal/machine"
	"heteropart/internal/report"
)

// Fig22a regenerates Figure 22(a): the speedup of the matrix
// multiplication C = A×Bᵀ on the Table 2 network using the functional
// model over the same application using the single-number model, for
// n = 15000…31000. Two baselines, as in the paper: single-number speeds
// measured at 500×500 and at 4000×4000 matrices.
//
// The functional model's speed functions are built through the §3.1
// procedure from noisy simulated measurements (the honest pipeline); the
// resulting distributions are evaluated against the ground-truth machine
// models.
func Fig22a(ns []int) (*report.Table, error) {
	if len(ns) == 0 {
		for n := 15000; n <= 31000; n += 2000 {
			ns = append(ns, n)
		}
	}
	ms := machine.Table2()
	truth, err := FlopRates(ms, machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	built, bstats, err := BuiltModels(ms, machine.MatrixMult, 0.05, 2004)
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 22(a) — matrix multiplication speedup: functional model over single-number model",
		"n", "T functional (s)", "T single(500) (s)", "speedup(500)", "T single(4000) (s)", "speedup(4000)")
	for _, n := range ns {
		fpm, err := mm.PartitionFPM(n, built)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig22a n=%d: %w", n, err)
		}
		tFPM, err := mm.SimTime(fpm, truth)
		if err != nil {
			return nil, err
		}
		row := []any{n, tFPM}
		for _, refN := range []int{500, 4000} {
			sn, err := mm.PartitionSingleNumber(n, refN, truth)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig22a single(%d): %w", refN, err)
			}
			tSN, err := mm.SimTime(sn, truth)
			if err != nil {
				return nil, err
			}
			row = append(row, tSN, tSN/tFPM)
		}
		t.AddRow(row...)
	}
	t.AddNote("speed functions built from %d simulated measurements (max %d per machine, ε = 5%%)",
		bstats.Measurements, bstats.MaxPerMachine)
	t.AddNote("paper shape: speedup > 1 throughout, growing once machines page; the 500-reference baseline suffers more at large n")
	return t, nil
}

// Fig22b regenerates Figure 22(b): the speedup of LU factorization with
// the Variable Group Block distribution under the functional model over
// the single-number model with reference factorizations of 2000×2000 and
// 5000×5000 matrices, for n = 16000…32000.
func Fig22b(ns []int, b int) (*report.Table, error) {
	if len(ns) == 0 {
		for n := 16000; n <= 32000; n += 4000 {
			ns = append(ns, n)
		}
	}
	if b <= 0 {
		b = 64
	}
	ms := machine.Table2()
	truth, err := FlopRates(ms, machine.LUFact)
	if err != nil {
		return nil, err
	}
	built, bstats, err := BuiltModels(ms, machine.LUFact, 0.05, 1974)
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 22(b) — LU factorization speedup: functional model over single-number model",
		"n", "T functional (s)", "T single(2000) (s)", "speedup(2000)", "T single(5000) (s)", "speedup(5000)")
	for _, n := range ns {
		fpm, err := lu.VariableGroupBlock(n, b, built)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig22b n=%d: %w", n, err)
		}
		tFPM, err := lu.SimTime(fpm, truth)
		if err != nil {
			return nil, err
		}
		row := []any{n, tFPM}
		for _, refN := range []int{2000, 5000} {
			snd, err := lu.SingleNumberDistribution(n, b, refN, truth)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig22b single(%d): %w", refN, err)
			}
			tSN, err := lu.SimTime(snd, truth)
			if err != nil {
				return nil, err
			}
			row = append(row, tSN, tSN/tFPM)
		}
		t.AddRow(row...)
	}
	t.AddNote("block size b = %d", b)
	t.AddNote("speed functions built from %d simulated measurements (max %d per machine, ε = 5%%)",
		bstats.Measurements, bstats.MaxPerMachine)
	t.AddNote("paper shape: speedup ≈ 1–2, growing with n, functional model never loses")
	return t, nil
}
