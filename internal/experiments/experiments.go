// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each experiment
// is a function returning report tables; cmd/experiments runs them all.
//
// The pipeline mirrors the paper's §3: per-machine speed models come from
// the machine package (the testbed substitution documented in DESIGN.md),
// the §3.1 builder turns noisy measurements into piecewise linear speed
// functions, the core partitioners distribute the work, and execution
// times are evaluated against the ground-truth analytic models.
package experiments

import (
	"errors"
	"fmt"

	"heteropart/internal/machine"
	"heteropart/internal/speed"
)

// FlopRates returns the ground-truth flop-rate functions of a testbed for
// one kernel.
func FlopRates(ms []machine.Machine, k machine.Kernel) ([]speed.Function, error) {
	fns := make([]speed.Function, len(ms))
	for i, m := range ms {
		f, err := m.FlopRate(k)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", m.Name, err)
		}
		fns[i] = f
	}
	return fns, nil
}

// BuildStats aggregates the §3.1 model-building cost over a testbed.
type BuildStats struct {
	// Measurements is the total number of simulated benchmark runs.
	Measurements int
	// MaxPerMachine is the largest per-machine measurement count.
	MaxPerMachine int
}

// buildRepeats is how many times each simulated benchmark is repeated and
// averaged before it is handed to the builder — the paper's "repeated
// several times, with an averaging of the results". Without averaging, a
// machine with a 40 % fluctuation band can never satisfy a 5 % acceptance
// band.
const buildRepeats = 10

// BuiltModels runs the §3.1 procedure for every machine: measure the
// kernel through the machine's noisy oracle (averaging repeated runs as
// the paper does) and build a piecewise linear approximation with the
// given acceptance band. A machine whose fluctuations exhaust the
// measurement budget keeps its partial model — the builder guarantees it
// is still valid. The returned functions are what a real deployment would
// hand to the partitioners; the analytic models remain the ground truth
// for evaluating execution times.
func BuiltModels(ms []machine.Machine, k machine.Kernel, eps float64, seed uint64) ([]speed.Function, BuildStats, error) {
	fns := make([]speed.Function, len(ms))
	var stats BuildStats
	for i, m := range ms {
		built, bs, err := BuildOne(m, k, eps, 400, seed+uint64(i))
		if err != nil {
			return nil, stats, err
		}
		stats.Measurements += bs.Measurements * buildRepeats
		if bs.Measurements > stats.MaxPerMachine {
			stats.MaxPerMachine = bs.Measurements
		}
		fns[i] = built
	}
	return fns, stats, nil
}

// BuildOne runs the §3.1 procedure for a single machine and kernel with
// the given acceptance band and measurement budget, averaging each
// simulated benchmark over buildRepeats runs. A budget exhaustion is not
// an error: the partial model is returned.
func BuildOne(m machine.Machine, k machine.Kernel, eps float64, budget int, seed uint64) (speed.Function, speed.BuildStats, error) {
	truth, err := m.FlopRate(k)
	if err != nil {
		return nil, speed.BuildStats{}, fmt.Errorf("experiments: %s: %w", m.Name, err)
	}
	raw, err := m.Oracle(k, seed)
	if err != nil {
		return nil, speed.BuildStats{}, err
	}
	averaged := func(x float64) (float64, error) {
		var sum float64
		for r := 0; r < buildRepeats; r++ {
			v, err := raw(x)
			if err != nil {
				return 0, err
			}
			sum += v
		}
		return sum / buildRepeats, nil
	}
	b := speed.Builder{Eps: eps, LogDomain: true, MaxMeasurements: budget}
	// Start the interval at a problem fitting in cache and end at the
	// model's domain limit.
	a := float64(m.CacheKB) * 16 // an eighth of the cache, in elements
	built, bs, err := b.Build(averaged, a, truth.Max)
	if err != nil && !errors.Is(err, speed.ErrBudget) {
		return nil, bs, fmt.Errorf("experiments: building %s/%s: %w", m.Name, k.Name, err)
	}
	return built, bs, nil
}
