package experiments

import (
	"fmt"
	"io"
	"strings"

	"heteropart/internal/measure"
	"heteropart/internal/pool"
	"heteropart/internal/report"
)

// Options scales RunAll between test-sized and full paper-sized sweeps.
type Options struct {
	// Quick trims sweeps (fewer sizes, smaller real kernels) so the whole
	// suite finishes in seconds; the full run regenerates every row of the
	// paper artifacts.
	Quick bool
	// SkipReal skips the real-host measurements (Tables 3–4 real halves).
	SkipReal bool
	// Only restricts the run to artifacts whose name contains this
	// substring (case-insensitive), e.g. "fig22" or "ablation".
	Only string
	// Workers bounds the worker pool that runs independent artifacts
	// concurrently (0 = GOMAXPROCS); it is also plumbed into the
	// measurement Config of the real-host tables. Output order is
	// deterministic regardless: tables are collected per artifact and
	// emitted in artifactNames order.
	Workers int
}

// names of the artifacts, in run order, for Options.Only matching.
var artifactNames = []string{
	"fig1", "fig2", "table3-model", "table4-model", "table3-real",
	"table4-real", "fig21", "fig22a", "fig22b",
	"ablation-algorithms", "ablation-bisection", "ablation-finetune",
	"ablation-builder", "ablation-communication", "ablation-2d",
	"ablation-step-model", "ablation-heterogeneity", "ablation-group-block", "ablation-overlap",
	"ablation-fault-recovery", "ablation-robust-measure",
}

// Artifacts lists the artifact names accepted by Options.Only.
func Artifacts() []string {
	return append([]string(nil), artifactNames...)
}

// RunAll regenerates every table and figure plus the ablations, writing
// the rendered tables to w. Independent artifacts run concurrently on the
// shared worker pool (bounded by Options.Workers); per-artifact tables are
// collected and emitted in the fixed artifactNames order, so the output is
// byte-identical to a serial run. It returns the tables for programmatic
// use; on failure, the error names the first failing artifact in run
// order and the returned tables are those of the artifacts before it.
func RunAll(w io.Writer, opt Options) ([]*report.Table, error) {
	one := func(t *report.Table, err error) ([]*report.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*report.Table{t}, nil
	}
	maxBase := 512
	cfg := measure.Config{Repeats: 3, Workers: opt.Workers}
	ps, sizes := []int(nil), []int64(nil)
	var mmNs, luNs []int
	if opt.Quick {
		maxBase = 128
		cfg.Repeats = 1
		ps = []int{270, 540}
		sizes = []int64{250_000_000, 1_000_000_000}
		mmNs = []int{15000, 23000, 31000}
		luNs = []int{16000, 24000, 32000}
	}
	runners := map[string]func() ([]*report.Table, error){
		"fig1":                   Fig1,
		"fig2":                   Fig2,
		"table3-model":           func() ([]*report.Table, error) { return one(Table3Model()) },
		"table4-model":           func() ([]*report.Table, error) { return one(Table4Model()) },
		"table3-real":            func() ([]*report.Table, error) { return one(Table3Real(maxBase, cfg)) },
		"table4-real":            func() ([]*report.Table, error) { return one(Table4Real(maxBase, cfg)) },
		"fig21":                  func() ([]*report.Table, error) { return one(Fig21(ps, sizes)) },
		"fig22a":                 func() ([]*report.Table, error) { return one(Fig22a(mmNs)) },
		"fig22b":                 func() ([]*report.Table, error) { return one(Fig22b(luNs, 64)) },
		"ablation-algorithms":    func() ([]*report.Table, error) { return one(AblationAlgorithms()) },
		"ablation-bisection":     func() ([]*report.Table, error) { return one(AblationAngleVsTangent()) },
		"ablation-finetune":      func() ([]*report.Table, error) { return one(AblationFineTuning()) },
		"ablation-builder":       func() ([]*report.Table, error) { return one(AblationBuilderBudget()) },
		"ablation-communication": func() ([]*report.Table, error) { return one(AblationCommunication()) },
		"ablation-2d":            func() ([]*report.Table, error) { return one(Ablation2DPartitioning()) },
		"ablation-step-model":    func() ([]*report.Table, error) { return one(AblationStepModel()) },
		"ablation-heterogeneity": func() ([]*report.Table, error) { return one(AblationHeterogeneity()) },
		"ablation-group-block":   func() ([]*report.Table, error) { return one(AblationGroupBlock()) },
		"ablation-overlap":       func() ([]*report.Table, error) { return one(AblationOverlap()) },
		"ablation-fault-recovery": func() ([]*report.Table, error) { return one(AblationFaultRecovery()) },
		"ablation-robust-measure": func() ([]*report.Table, error) { return one(AblationRobustMeasurement()) },
	}
	only := strings.ToLower(opt.Only)
	var selected []string
	for _, name := range artifactNames {
		if only != "" && !strings.Contains(name, only) {
			continue
		}
		if opt.SkipReal && strings.HasSuffix(name, "-real") {
			continue
		}
		selected = append(selected, name)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("experiments: -only %q matches no artifact (have %v)", opt.Only, artifactNames)
	}
	// Fan the selected artifacts out over the pool; each slot collects its
	// own tables so emission below stays in deterministic run order.
	tables := make([][]*report.Table, len(selected))
	errs := make([]error, len(selected))
	pool.Sized(opt.Workers).Run(len(selected), func(i int) {
		tables[i], errs[i] = runners[selected[i]]()
	})
	var all []*report.Table
	for i, name := range selected {
		if errs[i] != nil {
			return all, fmt.Errorf("%s: %w", name, errs[i])
		}
		for _, t := range tables[i] {
			all = append(all, t)
			if w != nil {
				fmt.Fprintln(w, t)
			}
		}
	}
	return all, nil
}
