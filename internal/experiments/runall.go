package experiments

import (
	"fmt"
	"io"
	"strings"

	"heteropart/internal/measure"
	"heteropart/internal/report"
)

// Options scales RunAll between test-sized and full paper-sized sweeps.
type Options struct {
	// Quick trims sweeps (fewer sizes, smaller real kernels) so the whole
	// suite finishes in seconds; the full run regenerates every row of the
	// paper artifacts.
	Quick bool
	// SkipReal skips the real-host measurements (Tables 3–4 real halves).
	SkipReal bool
	// Only restricts the run to artifacts whose name contains this
	// substring (case-insensitive), e.g. "fig22" or "ablation".
	Only string
}

// names of the artifacts, in run order, for Options.Only matching.
var artifactNames = []string{
	"fig1", "fig2", "table3-model", "table4-model", "table3-real",
	"table4-real", "fig21", "fig22a", "fig22b",
	"ablation-algorithms", "ablation-bisection", "ablation-finetune",
	"ablation-builder", "ablation-communication", "ablation-2d",
	"ablation-step-model", "ablation-heterogeneity", "ablation-group-block", "ablation-overlap",
	"ablation-fault-recovery",
}

// Artifacts lists the artifact names accepted by Options.Only.
func Artifacts() []string {
	return append([]string(nil), artifactNames...)
}

// RunAll regenerates every table and figure plus the ablations, writing
// the rendered tables to w. It returns the tables for programmatic use.
func RunAll(w io.Writer, opt Options) ([]*report.Table, error) {
	one := func(t *report.Table, err error) ([]*report.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*report.Table{t}, nil
	}
	maxBase := 512
	cfg := measure.Config{Repeats: 3}
	ps, sizes := []int(nil), []int64(nil)
	var mmNs, luNs []int
	if opt.Quick {
		maxBase = 128
		cfg.Repeats = 1
		ps = []int{270, 540}
		sizes = []int64{250_000_000, 1_000_000_000}
		mmNs = []int{15000, 23000, 31000}
		luNs = []int{16000, 24000, 32000}
	}
	runners := map[string]func() ([]*report.Table, error){
		"fig1":                   Fig1,
		"fig2":                   Fig2,
		"table3-model":           func() ([]*report.Table, error) { return one(Table3Model()) },
		"table4-model":           func() ([]*report.Table, error) { return one(Table4Model()) },
		"table3-real":            func() ([]*report.Table, error) { return one(Table3Real(maxBase, cfg)) },
		"table4-real":            func() ([]*report.Table, error) { return one(Table4Real(maxBase, cfg)) },
		"fig21":                  func() ([]*report.Table, error) { return one(Fig21(ps, sizes)) },
		"fig22a":                 func() ([]*report.Table, error) { return one(Fig22a(mmNs)) },
		"fig22b":                 func() ([]*report.Table, error) { return one(Fig22b(luNs, 64)) },
		"ablation-algorithms":    func() ([]*report.Table, error) { return one(AblationAlgorithms()) },
		"ablation-bisection":     func() ([]*report.Table, error) { return one(AblationAngleVsTangent()) },
		"ablation-finetune":      func() ([]*report.Table, error) { return one(AblationFineTuning()) },
		"ablation-builder":       func() ([]*report.Table, error) { return one(AblationBuilderBudget()) },
		"ablation-communication": func() ([]*report.Table, error) { return one(AblationCommunication()) },
		"ablation-2d":            func() ([]*report.Table, error) { return one(Ablation2DPartitioning()) },
		"ablation-step-model":    func() ([]*report.Table, error) { return one(AblationStepModel()) },
		"ablation-heterogeneity": func() ([]*report.Table, error) { return one(AblationHeterogeneity()) },
		"ablation-group-block":   func() ([]*report.Table, error) { return one(AblationGroupBlock()) },
		"ablation-overlap":       func() ([]*report.Table, error) { return one(AblationOverlap()) },
		"ablation-fault-recovery": func() ([]*report.Table, error) { return one(AblationFaultRecovery()) },
	}
	only := strings.ToLower(opt.Only)
	var all []*report.Table
	matched := false
	for _, name := range artifactNames {
		if only != "" && !strings.Contains(name, only) {
			continue
		}
		if opt.SkipReal && strings.HasSuffix(name, "-real") {
			continue
		}
		matched = true
		ts, err := runners[name]()
		if err != nil {
			return all, fmt.Errorf("%s: %w", name, err)
		}
		for _, t := range ts {
			all = append(all, t)
			if w != nil {
				fmt.Fprintln(w, t)
			}
		}
	}
	if !matched {
		return nil, fmt.Errorf("experiments: -only %q matches no artifact (have %v)", opt.Only, artifactNames)
	}
	return all, nil
}
