package experiments

import (
	"errors"
	"math"
	"sort"
	"strings"

	"fmt"
	"heteropart/internal/apps/lu"
	"heteropart/internal/apps/mm"
	"heteropart/internal/core"
	"heteropart/internal/des"
	"heteropart/internal/faults"
	"heteropart/internal/geometry"

	"heteropart/internal/grid"
	"heteropart/internal/machine"
	"heteropart/internal/measure"
	"heteropart/internal/report"
	"heteropart/internal/sim"
	"heteropart/internal/speed"
)

// expCurve is the exponential-slope adversarial shape used by the
// algorithm ablation (the paper's O(p·n) worst case for the basic
// algorithm).
type expCurve struct{ peak, scale, max float64 }

func (e expCurve) Eval(x float64) float64 {
	if x <= 0 {
		return e.peak
	}
	return e.peak * math.Exp(-x/e.scale)
}
func (e expCurve) MaxSize() float64 { return e.max }

// AblationAlgorithms compares the three partitioners across curve
// families: steps, intersections and the resulting makespan. The shape the
// paper predicts: on polynomial-slope curves the basic algorithm is the
// cheapest; on exponential-slope curves the modified algorithm's step
// count stays bounded while remaining optimal; combined tracks the better
// of the two.
func AblationAlgorithms() (*report.Table, error) {
	type family struct {
		name string
		fns  []speed.Function
		n    int64
	}
	t2, err := FlopRates(machine.Table2(), machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	families := []family{
		{name: "analytic (Table 2, MM)", fns: t2, n: 500_000_000},
		{name: "constant", fns: []speed.Function{
			speed.MustConstant(1e8, 1e12), speed.MustConstant(3e8, 1e12),
			speed.MustConstant(5e7, 1e12), speed.MustConstant(4e8, 1e12),
		}, n: 1_000_000},
		{name: "exponential slope", fns: []speed.Function{
			expCurve{peak: 1e6, scale: 400, max: 1e5},
			expCurve{peak: 3e6, scale: 300, max: 1e5},
			expCurve{peak: 2e6, scale: 500, max: 1e5},
		}, n: 5000},
	}
	t := report.New("Ablation — partitioning algorithms across curve families",
		"family", "algorithm", "steps", "intersections", "makespan (s)")
	algos := []struct {
		name string
		run  func(int64, []speed.Function, ...core.Option) (core.Result, error)
	}{
		{"basic", core.Basic}, {"modified", core.Modified}, {"combined", core.Combined},
	}
	for _, f := range families {
		for _, a := range algos {
			res, err := a.run(f.n, f.fns)
			if err != nil {
				return nil, err
			}
			t.AddRow(f.name, a.name, res.Stats.Steps, res.Stats.Intersections,
				core.Makespan(res.Alloc, f.fns))
		}
	}
	return t, nil
}

// AblationAngleVsTangent compares the two bisection rules of the basic
// algorithm. The paper notes angles are the formal definition and tangents
// the practical implementation; both must converge to the same optimum.
func AblationAngleVsTangent() (*report.Table, error) {
	fns, err := FlopRates(machine.Table2(), machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	t := report.New("Ablation — bisection rule (basic algorithm)",
		"n", "rule", "steps", "makespan (s)")
	for _, n := range []int64{10_000_000, 300_000_000, 1_000_000_000} {
		for _, rule := range []geometry.BisectionRule{geometry.BisectTangents, geometry.BisectAngles} {
			res, err := core.Basic(n, fns, core.WithBisection(rule))
			if err != nil {
				return nil, err
			}
			t.AddRow(float64(n), rule.String(), res.Stats.Steps, core.Makespan(res.Alloc, fns))
		}
	}
	return t, nil
}

// AblationFineTuning measures what the O(p·log p) fine-tuning step buys
// over plain largest-remainder rounding of the geometric solution.
func AblationFineTuning() (*report.Table, error) {
	fns, err := FlopRates(machine.Table2(), machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	t := report.New("Ablation — fine-tuning vs largest-remainder rounding",
		"n", "makespan fine-tuned (s)", "makespan rounded (s)", "rounded/fine-tuned")
	for _, n := range []int64{10_000, 1_000_000, 100_000_000} {
		ft, err := core.Combined(n, fns)
		if err != nil {
			return nil, err
		}
		rd, err := core.Combined(n, fns, core.WithoutFineTune())
		if err != nil {
			return nil, err
		}
		a := core.Makespan(ft.Alloc, fns)
		b := core.Makespan(rd.Alloc, fns)
		t.AddRow(float64(n), a, b, b/a)
	}
	t.AddNote("fine-tuning matters most at small n where single elements shift per-processor times")
	return t, nil
}

// AblationBuilderBudget varies the §3.1 measurement budget and reports the
// model error and the end-to-end cost: the makespan of a multiplication
// partitioned with the budget-limited model, relative to partitioning with
// the ground truth.
func AblationBuilderBudget() (*report.Table, error) {
	ms := machine.Table2()
	truth, err := FlopRates(ms, machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	const n = 25000
	ideal, err := mm.PartitionFPM(n, truth)
	if err != nil {
		return nil, err
	}
	tIdeal, err := mm.SimTime(ideal, truth)
	if err != nil {
		return nil, err
	}
	t := report.New("Ablation — §3.1 measurement budget vs end-to-end balance (MM, n=25000)",
		"budget/machine", "measurements used", "makespan (s)", "vs ground-truth model")
	for _, budget := range []int{6, 12, 25, 50, 100, 200} {
		built := make([]speed.Function, len(ms))
		used := 0
		for i, m := range ms {
			model, bs, err := BuildOne(m, machine.MatrixMult, 0.05, budget, 99+uint64(i))
			if err != nil {
				return nil, err
			}
			used += bs.Measurements
			built[i] = model
		}
		plan, err := mm.PartitionFPM(n, built)
		if err != nil {
			return nil, err
		}
		tm, err := mm.SimTime(plan, truth)
		if err != nil {
			return nil, err
		}
		t.AddRow(budget, used, tm, tm/tIdeal)
	}
	t.AddNote("ground-truth-model makespan: %s s", report.FormatFloat(tIdeal))
	return t, nil
}

// AblationCommunication exercises the optional serialized-Ethernet
// extension the paper excludes from its model: how much a latency +
// bandwidth communication term would add to the Figure 22(a) runs, for the
// 100 Mbit switched network the experiments used.
func AblationCommunication() (*report.Table, error) {
	ms := machine.Table2()
	truth, err := FlopRates(ms, machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	net := &sim.Network{LatencySec: 100e-6, BytesPerSec: 100e6 / 8, Serialized: true}
	t := report.New("Ablation — communication extension (B broadcast, serialized 100 Mbit Ethernet)",
		"n", "compute makespan (s)", "comm time (s)", "comm share %")
	for _, n := range []int{15000, 23000, 31000} {
		plan, err := mm.PartitionFPM(n, truth)
		if err != nil {
			return nil, err
		}
		tc, err := mm.SimTime(plan, truth)
		if err != nil {
			return nil, err
		}
		// Every processor receives the full matrix B (n² elements of 8
		// bytes), sent one at a time on the shared medium.
		msgs := make([]float64, len(ms))
		for i := range msgs {
			msgs[i] = 8 * float64(n) * float64(n)
		}
		tn, err := net.Time(msgs)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, tc, tn, 100*tn/(tn+tc))
	}
	t.AddNote("the paper ignores communication; this quantifies when that is justified for the MM application")
	return t, nil
}

// Ablation2DPartitioning exercises the multi-dimensional extension §3.1
// sketches: partitioning an N×N element grid into rectangles (one per
// processor) instead of horizontal stripes. Computation balance is the
// same — areas are proportional either way — but the total semi-perimeter,
// the communication proxy of the heterogeneous matrix-multiplication
// literature, drops substantially with the 2D arrangement.
func Ablation2DPartitioning() (*report.Table, error) {
	fns, err := FlopRates(machine.Table2(), machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	t := report.New("Ablation — 1D stripes vs 2D rectangles (Table 2 machines)",
		"N", "stripes Σ(w+h)", "2D Σ(w+h)", "reduction %", "2D columns", "makespan ratio 2D/1D")
	for _, n := range []int{2000, 6000, 12000} {
		stripes, err := grid.Partition2D(n, n, fns, grid.Options{Columns: 1})
		if err != nil {
			return nil, err
		}
		rects, err := grid.Partition2D(n, n, fns, grid.Options{})
		if err != nil {
			return nil, err
		}
		sp1 := grid.TotalSemiPerimeter(stripes.Rects)
		sp2 := grid.TotalSemiPerimeter(rects.Rects)
		t.AddRow(n, float64(sp1), float64(sp2),
			100*(1-float64(sp2)/float64(sp1)),
			rects.Columns,
			rects.Makespan/stripes.Makespan)
	}
	t.AddNote("areas stay proportional to the speed functions in both layouts; only the arrangement differs")
	return t, nil
}

// AblationStepModel quantifies the paper's argument against the
// piecewise-constant (step-wise) speed models of the divisible-load
// related work [18]–[19]: for common applications with smooth speed
// curves, a staircase approximation misallocates. Each Table 2 machine's
// MatrixMult curve is summarized as a k-level staircase; the resulting
// distribution is evaluated against the true model and compared with the
// piecewise linear functional model built by the §3.1 procedure.
func AblationStepModel() (*report.Table, error) {
	ms := machine.Table2()
	truth, err := FlopRates(ms, machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	const n = 25000
	ideal, err := mm.PartitionFPM(n, truth)
	if err != nil {
		return nil, err
	}
	tIdeal, err := mm.SimTime(ideal, truth)
	if err != nil {
		return nil, err
	}
	t := report.New("Ablation — step-wise (DLT-style) models vs the functional model (MM, n=25000)",
		"model", "makespan (s)", "vs ground truth")
	for _, k := range []int{1, 2, 4, 8, 16} {
		steps := make([]speed.Function, len(truth))
		for i, f := range truth {
			s, err := speed.StepFromFunction(f, k)
			if err != nil {
				return nil, err
			}
			steps[i] = s
		}
		plan, err := mm.PartitionFPM(n, steps)
		if err != nil {
			return nil, err
		}
		tm, err := mm.SimTime(plan, truth)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("staircase k=%d", k), tm, tm/tIdeal)
	}
	built, _, err := BuiltModels(ms, machine.MatrixMult, 0.05, 2004)
	if err != nil {
		return nil, err
	}
	plan, err := mm.PartitionFPM(n, built)
	if err != nil {
		return nil, err
	}
	tm, err := mm.SimTime(plan, truth)
	if err != nil {
		return nil, err
	}
	t.AddRow("piecewise linear (§3.1 built)", tm, tm/tIdeal)
	t.AddRow("ground truth (analytic)", tIdeal, 1.0)
	t.AddNote("k=1 is the single-number model; the paper's claim: smooth curves need a continuous approximation")
	return t, nil
}

// AblationHeterogeneity sweeps the diversity of the cluster's memory
// hierarchy: eight machines with equal peak rates whose paging points are
// spread over a factor m. With m = 1 (homogeneous memory) the single-number
// model distributes as well as the functional model; the functional model's
// advantage is created by the diversity of the paging points — the paper's
// central setting of "one or more tasks do not fit into the main memory of
// some processors".
func AblationHeterogeneity() (*report.Table, error) {
	t := report.New("Ablation — functional-model advantage vs memory-hierarchy diversity",
		"paging spread m", "T functional (s)", "T single-number (s)", "speedup")
	const p = 8
	const n = 12000 // 3n² = 4.3e8 elements over 8 machines
	for _, m := range []float64{1, 2, 4, 8, 16} {
		fns := make([]speed.Function, p)
		for i := 0; i < p; i++ {
			// Paging points geometrically spread over [base/√m, base·√m].
			frac := 0.0
			if p > 1 {
				frac = float64(i)/float64(p-1) - 0.5
			}
			paging := 4e7 * math.Pow(m, frac)
			fns[i] = &speed.Analytic{
				Peak: 2e7, HalfRise: 1e4,
				PagingPoint: paging, PagingWidth: paging / 4, PagingFloor: 0.1,
				Max: 1e10,
			}
		}
		fpm, err := mm.PartitionFPM(n, fns)
		if err != nil {
			return nil, err
		}
		tFPM, err := mm.SimTime(fpm, fns)
		if err != nil {
			return nil, err
		}
		sn, err := mm.PartitionSingleNumber(n, 500, fns)
		if err != nil {
			return nil, err
		}
		tSN, err := mm.SimTime(sn, fns)
		if err != nil {
			return nil, err
		}
		t.AddRow(m, tFPM, tSN, tSN/tFPM)
	}
	t.AddNote("equal peak rates; only the paging points differ — the speedup is purely the memory-heterogeneity effect")
	return t, nil
}

// AblationGroupBlock compares the Variable Group Block distribution with
// the plain Group Block of the paper's references [27]–[28] (shares frozen
// at the full-matrix speeds). The honest finding under the synchronous
// per-step cost model: adaptation helps at moderate sizes and turns
// slightly harmful at large ones, because a block column allocated for a
// late (small-matrix) group still participates in every earlier update —
// the early, expensive steps are governed by the full-matrix speeds that
// plain Group Block uses directly.
func AblationGroupBlock() (*report.Table, error) {
	fns, err := FlopRates(machine.Table2(), machine.LUFact)
	if err != nil {
		return nil, err
	}
	t := report.New("Ablation — Variable Group Block vs plain Group Block (LU, b=64)",
		"n", "T VGB (s)", "T GB (s)", "GB/VGB")
	for _, n := range []int{8000, 16000, 24000, 32000} {
		vgb, err := lu.VariableGroupBlock(n, 64, fns)
		if err != nil {
			return nil, err
		}
		gb, err := lu.GroupBlock(n, 64, fns)
		if err != nil {
			return nil, err
		}
		tV, err := lu.SimTime(vgb, fns)
		if err != nil {
			return nil, err
		}
		tG, err := lu.SimTime(gb, fns)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, tV, tG, tG/tV)
	}
	t.AddNote("both distributions use the functional model; only the per-group speed refresh differs")
	return t, nil
}

// AblationOverlap uses the discrete-event engine to quantify what the
// closed-form "compute makespan + communication time" estimate misses:
// on a serialized medium the workers receive their inputs one at a time,
// so early receivers compute while later transfers are still in flight.
// The rows compare the compute-only model, the no-overlap closed form,
// and the event-driven overlap simulation for the Fig 22(a) application.
func AblationOverlap() (*report.Table, error) {
	ms := machine.Table2()
	truth, err := FlopRates(ms, machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	t := report.New("Ablation — compute/communication overlap (DES) for striped MM, 100 Mbit serialized",
		"n", "compute only (s)", "no overlap (s)", "DES overlap (s)", "overlap hides %", "link util %")
	for _, n := range []int{15000, 23000, 31000} {
		plan, err := mm.PartitionFPM(n, truth)
		if err != nil {
			return nil, err
		}
		p := len(truth)
		sg := &des.ScatterGather{
			SendBytes:   make([]float64, p),
			ReturnBytes: make([]float64, p),
			Work:        make([]float64, p),
			Size:        make([]float64, p),
			Speeds:      truth,
			LatencySec:  100e-6,
			BytesPerSec: 100e6 / 8,
		}
		nf := float64(n)
		for i, r := range plan.Rows {
			rf := float64(r)
			// Each worker receives its A stripe plus the full B, and
			// returns its C stripe.
			sg.SendBytes[i] = 8 * (rf*nf + nf*nf)
			sg.ReturnBytes[i] = 8 * rf * nf
			sg.Work[i] = 2 * rf * nf * nf
			sg.Size[i] = 3 * rf * nf
		}
		res, err := sg.Run()
		if err != nil {
			return nil, err
		}
		noOv, err := sg.NoOverlapMakespan()
		if err != nil {
			return nil, err
		}
		compute, err := mm.SimTime(plan, truth)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, compute, noOv, res.Makespan,
			100*(noOv-res.Makespan)/noOv, 100*res.LinkUtilization)
	}
	t.AddNote("the paper's computation-only model is the first column; the DES column is the closest to a real run")
	return t, nil
}

// AblationFaultRecovery (ABL11) compares the two recovery policies of the
// fault-injection subsystem on the closed-form model: FPM-aware
// failure-triggered repartitioning (the stranded work waterfilled over the
// survivors at their model speeds, as the supervised executors do via
// core.Repartition) against the naive baseline that discards all partial
// progress on the first confirmed failure and reruns the whole job on the
// survivors. Crashes hit the most-loaded Table 2 machines halfway through
// the fault-free run; the recovered makespan must stay strictly below the
// naive one — the survivors' finished shares are never recomputed.
func AblationFaultRecovery() (*report.Table, error) {
	ms := machine.Table2()
	truth, err := FlopRates(ms, machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	const n = 25000
	plan, err := mm.PartitionFPM(n, truth)
	if err != nil {
		return nil, err
	}
	nf := float64(n)
	tasks := make([]sim.Task, len(truth))
	for i, r := range plan.Rows {
		rf := float64(r)
		tasks[i] = sim.Task{Work: 2 * rf * nf * nf, Size: 3 * rf * nf}
	}
	base, _, err := sim.Makespan(tasks, truth)
	if err != nil {
		return nil, err
	}
	// Crash the most-loaded machines first — the worst case for recovery.
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return tasks[order[a]].Work > tasks[order[b]].Work })
	t := report.New(
		fmt.Sprintf("Ablation — failure-triggered repartitioning vs naive rerun (MM n=%d, Table 2, crashes at T/2)", n),
		"crashed machines", "fault-free (s)", "recovered (s)", "naive rerun (s)", "recovered/naive", "overhead %")
	for k := 1; k <= 4; k++ {
		var fs []faults.Fault
		var names []string
		for _, i := range order[:k] {
			fs = append(fs, faults.Fault{Kind: faults.Crash, Proc: i, At: base / 2})
			names = append(names, ms[i].Name)
		}
		pln, err := faults.NewPlan(fs...)
		if err != nil {
			return nil, err
		}
		opt := sim.FaultyOptions{Plan: pln}
		rec, err := sim.FaultyMakespan(tasks, truth, opt)
		if err != nil {
			return nil, err
		}
		naive, err := sim.NaiveRerunMakespan(tasks, truth, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(strings.Join(names, " "), base, rec.Makespan, naive.Makespan,
			rec.Makespan/naive.Makespan, 100*(rec.Makespan-base)/base)
	}
	t.AddNote("both policies pay the same detection timeout; the gap is purely the rerun of already-finished shares")
	return t, nil
}

// AblationRobustMeasurement (ABL12) quantifies what the robust measurement
// pipeline buys when the benchmark oracle is unreliable. Each Table 2
// machine's MatrixMult curve is rebuilt by the §3.1 procedure from its
// analytic truth under two conditions — clean, and corrupted by seeded
// multiplicative lognormal noise (σ = 0.1) plus 5 % ×4 outliers — through
// two pipelines: naive (each measurement is one raw oracle call) and
// robust (adaptive MAD-aggregated repetition until the 1 % confidence
// target). Columns report the model cost (trisection points and raw
// oracle calls), the model's max relative error against the truth, and
// the end-to-end makespan of an MM partition driven by the built models,
// relative to partitioning with the ground truth.
func AblationRobustMeasurement() (*report.Table, error) {
	ms := machine.Table2()
	truth, err := FlopRates(ms, machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	const n = 25000
	ideal, err := mm.PartitionFPM(n, truth)
	if err != nil {
		return nil, err
	}
	tIdeal, err := mm.SimTime(ideal, truth)
	if err != nil {
		return nil, err
	}
	const (
		minX   = 1e4
		maxX   = 2e9
		budget = 200
		seed   = 40 // per (machine, condition) seeds derive from this
	)
	maxRelErr := func(built speed.Function, i int) float64 {
		worst := 0.0
		// Sample strictly inside the built domain: Eval is right-exclusive
		// at MaxSize.
		for k := 0; k < 200; k++ {
			x := minX * math.Pow(maxX/minX, float64(k)/200)
			want := truth[i].Eval(x)
			if !(want > 0) {
				continue
			}
			if e := math.Abs(built.Eval(x)-want) / want; e > worst {
				worst = e
			}
		}
		return worst
	}
	build := func(noisy, robust bool) ([]speed.Function, int, int, float64, int, error) {
		built := make([]speed.Function, len(ms))
		points, calls, exhausted := 0, 0, 0
		worst := 0.0
		for i := range ms {
			f := truth[i]
			var raw speed.Oracle = func(x float64) (float64, error) { return f.Eval(x), nil }
			counted := func(x float64) (float64, error) { calls++; return raw(x) }
			if noisy {
				plan, err := faults.NewMeasurePlan(seed+uint64(i),
					faults.MeasureFault{Kind: faults.Noise, Proc: 0, Sigma: 0.1},
					faults.MeasureFault{Kind: faults.Outlier, Proc: 0, Rate: 0.05, Factor: 4})
				if err != nil {
					return nil, 0, 0, 0, 0, err
				}
				counted = faults.FaultyOracle(func(x float64) (float64, error) { calls++; return raw(x) }, 0, plan)
			}
			b := speed.Builder{Eps: 0.05, MaxMeasurements: budget, LogDomain: true}
			var fn *speed.PiecewiseLinear
			var bs speed.BuildStats
			var err error
			if robust {
				r := measure.Robust{
					MinSamples: 25, MaxSamples: 100, TargetRelWidth: 0.01,
					Seed: seed + uint64(i),
				}
				b.QualityTarget = 0.01
				fn, bs, err = b.BuildQ(r.Oracle(counted), minX, maxX)
			} else {
				fn, bs, err = b.Build(counted, minX, maxX)
			}
			if err != nil {
				// Budget exhaustion under noise is a finding, not a
				// failure: score the partial model the naive pipeline
				// actually delivers.
				if !errors.Is(err, speed.ErrBudget) || fn == nil {
					return nil, 0, 0, 0, 0, err
				}
				exhausted++
			}
			points += bs.Measurements
			built[i] = fn
			if e := maxRelErr(fn, i); e > worst {
				worst = e
			}
		}
		return built, points, calls, worst, exhausted, nil
	}
	t := report.New(
		fmt.Sprintf("Ablation — robust vs naive measurement pipeline (§3.1 rebuild of Table 2, MM n=%d)", n),
		"condition", "pipeline", "points", "oracle calls", "max model err %", "makespan vs truth")
	for _, cond := range []struct {
		name  string
		noisy bool
	}{{"clean", false}, {"noisy σ=0.1 + 5% outliers", true}} {
		for _, pipe := range []struct {
			name   string
			robust bool
		}{{"naive", false}, {"robust", true}} {
			built, points, calls, worst, exhausted, err := build(cond.noisy, pipe.robust)
			if err != nil {
				return nil, err
			}
			plan, err := mm.PartitionFPM(n, built)
			if err != nil {
				return nil, err
			}
			tm, err := mm.SimTime(plan, truth)
			if err != nil {
				return nil, err
			}
			label := pipe.name
			if exhausted > 0 {
				label = fmt.Sprintf("%s (budget exhausted on %d/%d)", pipe.name, exhausted, len(ms))
			}
			t.AddRow(cond.name, label, points, calls, 100*worst, tm/tIdeal)
		}
	}
	t.AddNote("noise and outliers are seeded and replayable (internal/faults measurement plans)")
	t.AddNote("robust = per-point adaptive repetition, MAD outlier rejection, 1%% confidence target (internal/measure)")
	return t, nil
}
