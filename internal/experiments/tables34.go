package experiments

import (
	"fmt"
	"math"

	"heteropart/internal/kernels"
	"heteropart/internal/machine"
	"heteropart/internal/matrix"
	"heteropart/internal/measure"
	"heteropart/internal/report"
)

// shapeFamily lists the matrix shapes of one column group of Tables 3–4:
// a base square size and reshapes with the same number of elements.
func shapeFamily(base int) [][2]int {
	return [][2]int{
		{base, base},
		{base / 2, base * 2},
		{base / 4, base * 4},
		{base / 8, base * 8},
	}
}

// Table3Model regenerates Table 3 under the machine model for X8: the
// absolute speed of serial matrix multiplication at equal element counts
// across shapes. Under the functional model speed is a function of the
// element count by construction, so each family shows one value — the
// property the paper established empirically and the model encodes.
func Table3Model() (*report.Table, error) {
	m, ok := machine.ByName(machine.Table2(), "X8")
	if !ok {
		return nil, fmt.Errorf("experiments: missing X8")
	}
	f, err := m.FlopRate(machine.MatrixMult)
	if err != nil {
		return nil, err
	}
	t := report.New("Table 3 (model) — serial matrix multiplication on X8, speed vs shape at equal elements",
		"shape", "elements", "speed (MFlops)")
	for _, base := range []int{256, 1024, 2304, 4096} {
		for _, s := range shapeFamily(base) {
			elems := 3 * float64(s[0]) * float64(s[1])
			t.AddRow(fmt.Sprintf("%d×%d", s[0], s[1]), elems, f.Eval(elems)/1e6)
		}
	}
	t.AddNote("paper values for X8: ≈67 MFlops for all shapes up to 2304², ≈59–60 past paging")
	return t, nil
}

// Table3Real measures the shape invariance on the host with the real
// naive multiplication kernel: A(n1×n2)·B(n2×n1) for shapes of equal
// element count. maxBase bounds the square size (keep ≤ 256 in tests).
func Table3Real(maxBase int, cfg measure.Config) (*report.Table, error) {
	t := report.New("Table 3 (real, this host) — serial matrix multiplication speed vs shape",
		"shape", "elements", "speed (MFlops)", "family spread")
	for base := 64; base <= maxBase; base *= 2 {
		rates := make([]float64, 0, 4)
		rows := make([][2]int, 0, 4)
		for _, s := range shapeFamily(base) {
			if s[0] < 1 {
				continue
			}
			n1, n2 := s[0], s[1]
			a := matrix.MustNew(n1, n2)
			b := matrix.MustNew(n2, n1)
			c := matrix.MustNew(n1, n1)
			a.FillRandom(uint64(n1))
			b.FillRandom(uint64(n2))
			flops := kernels.FlopsMatMulRect(n1, n2, n1)
			rate, err := cfg.FlopRate(flops, func() error {
				return kernels.MatMulNaive(c, a, b)
			})
			if err != nil {
				return nil, err
			}
			rates = append(rates, rate)
			rows = append(rows, s)
		}
		spread := spreadOf(rates)
		for i, s := range rows {
			note := ""
			if i == 0 {
				note = report.FormatFloat(spread)
			}
			t.AddRow(fmt.Sprintf("%d×%d", s[0], s[1]),
				3*float64(s[0])*float64(s[1]), rates[i]/1e6, note)
		}
	}
	t.AddNote("spread = max/min speed within a family; the paper observes ≈1.0 (shape invariance)")
	return t, nil
}

// Table4Model regenerates Table 4 under the machine model for X8 (serial
// LU factorization).
func Table4Model() (*report.Table, error) {
	m, ok := machine.ByName(machine.Table2(), "X8")
	if !ok {
		return nil, fmt.Errorf("experiments: missing X8")
	}
	f, err := m.FlopRate(machine.LUFact)
	if err != nil {
		return nil, err
	}
	t := report.New("Table 4 (model) — serial LU factorization on X8, speed vs shape at equal elements",
		"shape", "elements", "speed (MFlops)")
	for _, base := range []int{1024, 2304, 4096, 6400} {
		for _, s := range shapeFamily(base) {
			elems := float64(s[0]) * float64(s[1])
			t.AddRow(fmt.Sprintf("%d×%d", s[0], s[1]), elems, f.Eval(elems)/1e6)
		}
	}
	t.AddNote("paper values for X8: ≈115–132 MFlops across all shapes and families")
	return t, nil
}

// Table4Real measures the LU shape invariance on the host with the real
// rectangular factorization kernel.
func Table4Real(maxBase int, cfg measure.Config) (*report.Table, error) {
	t := report.New("Table 4 (real, this host) — serial LU factorization speed vs shape",
		"shape", "elements", "speed (MFlops)", "family spread")
	for base := 64; base <= maxBase; base *= 2 {
		rates := make([]float64, 0, 4)
		rows := make([][2]int, 0, 4)
		for _, s := range shapeFamily(base) {
			if s[0] < 1 {
				continue
			}
			n1, n2 := s[0], s[1]
			orig := matrix.MustNew(n1, n2)
			orig.FillRandom(uint64(n1 + n2))
			for i := 0; i < min(n1, n2); i++ {
				orig.Set(i, i, orig.At(i, i)+float64(n1+n2))
			}
			flops := kernels.FlopsLURect(n1, n2)
			rate, err := cfg.FlopRate(flops, func() error {
				work := orig.Clone()
				_, err := kernels.LUFactorizeRect(work)
				return err
			})
			if err != nil {
				return nil, err
			}
			rates = append(rates, rate)
			rows = append(rows, s)
		}
		spread := spreadOf(rates)
		for i, s := range rows {
			note := ""
			if i == 0 {
				note = report.FormatFloat(spread)
			}
			t.AddRow(fmt.Sprintf("%d×%d", s[0], s[1]),
				float64(s[0])*float64(s[1]), rates[i]/1e6, note)
		}
	}
	t.AddNote("spread = max/min speed within a family; the paper observes ≈1.0 (shape invariance)")
	return t, nil
}

// spreadOf returns max/min of positive rates (1 for degenerate input).
func spreadOf(rates []float64) float64 {
	lo, hi := math.Inf(1), 0.0
	for _, r := range rates {
		if r <= 0 {
			continue
		}
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	if !(hi > 0) || math.IsInf(lo, 1) {
		return 1
	}
	return hi / lo
}
