package experiments

import (
	"strconv"
	"strings"
	"testing"

	"heteropart/internal/machine"
	"heteropart/internal/measure"
	"heteropart/internal/speed"
)

func TestFlopRates(t *testing.T) {
	fns, err := FlopRates(machine.Table2(), machine.MatrixMult)
	if err != nil {
		t.Fatalf("FlopRates: %v", err)
	}
	if len(fns) != 12 {
		t.Fatalf("%d functions, want 12", len(fns))
	}
	for i, f := range fns {
		if f == nil || !(f.MaxSize() > 0) {
			t.Errorf("function %d invalid", i)
		}
	}
}

func TestBuiltModelsApproximateTruth(t *testing.T) {
	ms := machine.Table2()[:4]
	built, stats, err := BuiltModels(ms, machine.MatrixMult, 0.05, 7)
	if err != nil {
		t.Fatalf("BuiltModels: %v", err)
	}
	if stats.Measurements == 0 || stats.MaxPerMachine == 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	for i, m := range ms {
		truth, err := m.FlopRate(machine.MatrixMult)
		if err != nil {
			t.Fatal(err)
		}
		// Sample mid-domain points; built model within a loose band of
		// truth (fluctuation noise plus pwl interpolation error).
		for _, frac := range []float64{0.05, 0.2, 0.5, 0.8} {
			x := truth.Max * frac
			got, want := built[i].Eval(x), truth.Eval(x)
			if want <= 0 {
				continue
			}
			rel := got/want - 1
			if rel < -0.5 || rel > 0.5 {
				t.Errorf("%s: model at %.3g off by %.0f%%", m.Name, x, rel*100)
			}
		}
		if err := speed.CheckShape(built[i], 64); err != nil {
			t.Errorf("%s: built model shape: %v", m.Name, err)
		}
	}
}

func TestFig1Tables(t *testing.T) {
	tables, err := Fig1()
	if err != nil {
		t.Fatalf("Fig1: %v", err)
	}
	if len(tables) != 3 {
		t.Fatalf("%d tables, want 3 (one per application)", len(tables))
	}
	for _, tb := range tables {
		if tb.NumRows() == 0 {
			t.Errorf("%s: empty", tb.Title)
		}
		// 4 machines + size column.
		if len(tb.Headers) != 5 {
			t.Errorf("%s: %d columns", tb.Title, len(tb.Headers))
		}
	}
}

func TestFig2BandsDecline(t *testing.T) {
	tables, err := Fig2()
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if len(tables) != 3 {
		t.Fatalf("%d tables, want 3", len(tables))
	}
	// All Figure 2 machines are highly integrated: the width column must
	// strictly decline down each table.
	for _, tb := range tables {
		rows := tb.Rows()
		prev := 1e9
		for _, r := range rows {
			w, err := strconv.ParseFloat(r[len(r)-1], 64)
			if err != nil {
				t.Fatalf("%s: bad width cell %q", tb.Title, r[len(r)-1])
			}
			if w > prev {
				t.Errorf("%s: width rises (%v after %v)", tb.Title, w, prev)
			}
			prev = w
		}
		if prev > 10 {
			t.Errorf("%s: final width %.1f%%, want single digits", tb.Title, prev)
		}
	}
}

func TestTable3ModelInvariance(t *testing.T) {
	tb, err := Table3Model()
	if err != nil {
		t.Fatalf("Table3Model: %v", err)
	}
	// Within each 4-row family the speed cells must be identical (the
	// model's speed is a function of the element count alone).
	rows := tb.Rows()
	if len(rows)%4 != 0 {
		t.Fatalf("row count %d not a multiple of 4", len(rows))
	}
	for f := 0; f < len(rows); f += 4 {
		for i := 1; i < 4; i++ {
			if rows[f+i][2] != rows[f][2] {
				t.Errorf("family at row %d: speed differs across shapes: %v vs %v",
					f, rows[f+i][2], rows[f][2])
			}
		}
	}
}

func TestTable4ModelInvariance(t *testing.T) {
	tb, err := Table4Model()
	if err != nil {
		t.Fatalf("Table4Model: %v", err)
	}
	if tb.NumRows() != 16 {
		t.Errorf("rows = %d, want 16", tb.NumRows())
	}
}

func TestTables34Real(t *testing.T) {
	cfg := measure.Config{Repeats: 1}
	t3, err := Table3Real(128, cfg)
	if err != nil {
		t.Fatalf("Table3Real: %v", err)
	}
	if t3.NumRows() == 0 {
		t.Error("Table3Real: empty")
	}
	t4, err := Table4Real(128, cfg)
	if err != nil {
		t.Fatalf("Table4Real: %v", err)
	}
	if t4.NumRows() == 0 {
		t.Error("Table4Real: empty")
	}
}

func TestFig21Negligible(t *testing.T) {
	tb, err := Fig21([]int{270}, []int64{250_000_000})
	if err != nil {
		t.Fatalf("Fig21: %v", err)
	}
	cost, err := strconv.ParseFloat(tb.Rows()[0][1], 64)
	if err != nil {
		t.Fatalf("bad cost cell: %v", err)
	}
	// The paper's claim: negligible next to minutes-to-hours run times.
	if cost > 1.0 {
		t.Errorf("partitioning cost %.3fs, expected well under a second", cost)
	}
}

func TestFig22aSpeedupAboveOne(t *testing.T) {
	tb, err := Fig22a([]int{15000, 25000, 31000})
	if err != nil {
		t.Fatalf("Fig22a: %v", err)
	}
	assertSpeedupColumns(t, tb, []int{3, 5})
}

func TestFig22bSpeedupAboveOne(t *testing.T) {
	tb, err := Fig22b([]int{16000, 24000, 32000}, 64)
	if err != nil {
		t.Fatalf("Fig22b: %v", err)
	}
	assertSpeedupColumns(t, tb, []int{3, 5})
}

// assertSpeedupColumns checks that every speedup cell is ≥ ~1: the paper
// argues the single-number distribution cannot in principle beat the
// functional one; a small tolerance absorbs model-building noise.
func assertSpeedupColumns(t *testing.T, tb interface {
	Rows() [][]string
	String() string
}, cols []int) {
	t.Helper()
	for _, row := range tb.Rows() {
		for _, c := range cols {
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				t.Fatalf("bad speedup cell %q", row[c])
			}
			if v < 0.97 {
				t.Errorf("speedup %v < 1 in row %v\n%s", v, row, tb)
			}
		}
	}
}

func TestSyntheticCluster(t *testing.T) {
	fns, err := SyntheticCluster(50, machine.MatrixMult)
	if err != nil {
		t.Fatalf("SyntheticCluster: %v", err)
	}
	if len(fns) != 50 {
		t.Fatalf("%d functions", len(fns))
	}
	// Perturbation must make cycled copies distinct.
	if fns[0].Eval(1e6) == fns[12].Eval(1e6) {
		t.Error("cycled machines identical despite perturbation")
	}
}

func TestAblations(t *testing.T) {
	for name, run := range map[string]func() (interface{ NumRows() int }, error){
		"algorithms": func() (interface{ NumRows() int }, error) { return AblationAlgorithms() },
		"bisection":  func() (interface{ NumRows() int }, error) { return AblationAngleVsTangent() },
		"finetune":   func() (interface{ NumRows() int }, error) { return AblationFineTuning() },
		"comm":       func() (interface{ NumRows() int }, error) { return AblationCommunication() },
		"grid2d":     func() (interface{ NumRows() int }, error) { return Ablation2DPartitioning() },
		"step-model": func() (interface{ NumRows() int }, error) { return AblationStepModel() },
		"heterog":    func() (interface{ NumRows() int }, error) { return AblationHeterogeneity() },
		"groupblock": func() (interface{ NumRows() int }, error) { return AblationGroupBlock() },
		"overlap":    func() (interface{ NumRows() int }, error) { return AblationOverlap() },
		"faults":     func() (interface{ NumRows() int }, error) { return AblationFaultRecovery() },
	} {
		tb, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tb.NumRows() == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
}

func TestAblationBuilderBudget(t *testing.T) {
	tb, err := AblationBuilderBudget()
	if err != nil {
		t.Fatalf("AblationBuilderBudget: %v", err)
	}
	rows := tb.Rows()
	if len(rows) < 3 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	// The largest budget must be at least as good (≤ ratio) as the
	// smallest, modulo a little noise.
	first, err := strconv.ParseFloat(rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	last, err := strconv.ParseFloat(rows[len(rows)-1][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if last > first*1.1 {
		t.Errorf("more measurements made balance worse: %.3f → %.3f", first, last)
	}
}

func TestAblationFaultRecovery(t *testing.T) {
	tb, err := AblationFaultRecovery()
	if err != nil {
		t.Fatalf("AblationFaultRecovery: %v", err)
	}
	rows := tb.Rows()
	if len(rows) < 3 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	for _, row := range rows {
		base, err1 := strconv.ParseFloat(row[1], 64)
		rec, err2 := strconv.ParseFloat(row[2], 64)
		naive, err3 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("bad cells in row %v", row)
		}
		// The FPM-aware recovery never recomputes finished shares, so it
		// must beat the rerun-from-scratch baseline strictly, and both
		// must cost more than the fault-free run.
		if !(rec < naive) {
			t.Errorf("%s: recovered %v not below naive %v", row[0], rec, naive)
		}
		if !(rec > base) {
			t.Errorf("%s: recovery %v not above fault-free %v", row[0], rec, base)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	var sb strings.Builder
	tables, err := RunAll(&sb, Options{Quick: true})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(tables) < 12 {
		t.Errorf("only %d tables", len(tables))
	}
	out := sb.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Table 3", "Table 4", "Figure 21", "Figure 22(a)", "Figure 22(b)", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestRunAllConcurrentDeterministicOrder(t *testing.T) {
	// The fan-out over the worker pool must not change what is emitted or
	// in which order. Measured cells (real tables, partitioner wall times)
	// vary run to run, so compare the title sequence, not the bytes.
	titles := func(workers int) []string {
		t.Helper()
		tables, err := RunAll(nil, Options{Quick: true, SkipReal: true, Workers: workers})
		if err != nil {
			t.Fatalf("RunAll(workers=%d): %v", workers, err)
		}
		out := make([]string, len(tables))
		for i, tb := range tables {
			out[i] = tb.Title
		}
		return out
	}
	serial := titles(1)
	concurrent := titles(4)
	if len(serial) != len(concurrent) {
		t.Fatalf("table counts differ: %d serial vs %d concurrent", len(serial), len(concurrent))
	}
	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Errorf("table %d: %q (serial) vs %q (concurrent)", i, serial[i], concurrent[i])
		}
	}
}

func TestRunAllOnlyWithWorkers(t *testing.T) {
	tables, err := RunAll(nil, Options{Quick: true, Only: "ablation", Workers: 3})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(tables) < 5 {
		t.Errorf("only %d ablation tables", len(tables))
	}
	if _, err := RunAll(nil, Options{Quick: true, Only: "nosuch", Workers: 3}); err == nil {
		t.Error("unmatched -only accepted")
	}
}
