package experiments

import (
	"fmt"
	"time"

	"heteropart/internal/core"
	"heteropart/internal/machine"
	"heteropart/internal/report"
	"heteropart/internal/speed"
)

// SyntheticCluster builds a p-processor cluster by cycling the Table 2
// machines with deterministically perturbed peak speeds, used to scale the
// partitioner-cost measurements of Figure 21 to hundreds of processors.
func SyntheticCluster(p int, k machine.Kernel) ([]speed.Function, error) {
	base := machine.Table2()
	fns := make([]speed.Function, p)
	for i := 0; i < p; i++ {
		m := base[i%len(base)]
		f, err := m.FlopRate(k)
		if err != nil {
			return nil, err
		}
		// Deterministic ±15 % peak perturbation so no two processors are
		// exactly identical.
		factor := 0.85 + 0.3*float64((i*2654435761)%1000)/1000
		g, err := speed.ScaleSpeed(f, factor)
		if err != nil {
			return nil, err
		}
		fns[i] = g
	}
	return fns, nil
}

// Fig21 regenerates Figure 21: the wall-clock cost in seconds of finding
// the optimal distribution with the partitioning algorithm, for p in
// {270, 540, 810, 1080} processors and problem sizes up to 2×10⁹
// elements. The paper's point: the cost is negligible (well under a
// second) next to application run times of minutes to hours.
func Fig21(ps []int, sizes []int64) (*report.Table, error) {
	if len(ps) == 0 {
		ps = []int{270, 540, 810, 1080}
	}
	if len(sizes) == 0 {
		sizes = []int64{250_000_000, 500_000_000, 1_000_000_000, 2_000_000_000}
	}
	headers := []string{"size"}
	for _, p := range ps {
		headers = append(headers, fmt.Sprintf("p=%d (s)", p))
	}
	t := report.New("Figure 21 — cost of the partitioning algorithm (seconds)", headers...)
	for _, n := range sizes {
		row := []any{float64(n)}
		for _, p := range ps {
			fns, err := SyntheticCluster(p, machine.MatrixMult)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := core.Combined(n, fns)
			cost := time.Since(start).Seconds()
			if err != nil {
				return nil, fmt.Errorf("experiments: fig21 p=%d n=%d: %w", p, n, err)
			}
			if res.Alloc.Sum() != n {
				return nil, fmt.Errorf("experiments: fig21 allocation mismatch")
			}
			row = append(row, cost)
		}
		t.AddRow(row...)
	}
	t.AddNote("paper reports ≤ 0.12 s at p=1080; absolute numbers differ with hardware, the point is the negligible magnitude")
	return t, nil
}
