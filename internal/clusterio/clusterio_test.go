package clusterio

import (
	"bytes"
	"strings"
	"testing"

	"heteropart/internal/faults"
	"heteropart/internal/machine"
	"heteropart/internal/speed"
)

const sampleDoc = `{
  "processors": [
    {"name": "pwl", "points": [{"size": 100, "speed": 1000}, {"size": 10000, "speed": 10}]},
    {"name": "const", "speed": 500, "max": 1e9},
    {"name": "steps", "levels": [{"upTo": 100, "speed": 50}, {"upTo": 1000, "speed": 5}]},
    {"name": "modelled", "spec": {
      "mhz": 1977, "mainMemKB": 1030508, "freeMemKB": 415904, "cacheKB": 512,
      "pagingMM": 6000, "pagingLU": 8500, "integration": "low"
    }}
  ]
}`

func TestLoadAndFunctions(t *testing.T) {
	c, err := Load(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fns, names, err := c.Functions(1e6)
	if err != nil {
		t.Fatalf("Functions: %v", err)
	}
	if len(fns) != 4 {
		t.Fatalf("%d functions", len(fns))
	}
	want := []string{"pwl", "const", "steps", "modelled"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %q, want %q", i, names[i], n)
		}
		if fns[i] == nil || !(fns[i].MaxSize() > 0) {
			t.Errorf("function %d invalid", i)
		}
	}
	// Representation checks.
	if _, ok := fns[0].(*speed.PiecewiseLinear); !ok {
		t.Errorf("fns[0] = %T, want piecewise linear", fns[0])
	}
	if fns[1].Eval(123) != 500 {
		t.Errorf("constant = %v", fns[1].Eval(123))
	}
	if _, ok := fns[2].(*speed.Step); !ok {
		t.Errorf("fns[2] = %T, want step", fns[2])
	}
	// Modelled machine expands through the default MatrixMult kernel.
	if fns[3].Eval(1e6) <= 0 {
		t.Error("modelled machine has zero speed")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown field": `{"processors": [{"name":"x","speed":1}], "bogus": 1}`,
		"no processors": `{"processors": []}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestFunctionsValidation(t *testing.T) {
	cases := map[string]Cluster{
		"none set": {Processors: []Processor{{Name: "x"}}},
		"two set": {Processors: []Processor{{
			Name: "x", Speed: 5, Points: []speed.Point{{X: 1, Y: 1}, {X: 2, Y: 1}},
		}}},
		"bad pwl": {Processors: []Processor{{
			Name: "x", Points: []speed.Point{{X: 1, Y: 1}},
		}}},
		"bad levels": {Processors: []Processor{{
			Name: "x", Levels: []speed.Level{{UpTo: -1, Y: 1}},
		}}},
		"bad spec": {Processors: []Processor{{
			Name: "x", Spec: &MachineSpec{},
		}}},
		"bad integration": {Processors: []Processor{{
			Name: "x", Spec: &MachineSpec{MHz: 100, MainMemKB: 100, FreeMemKB: 10,
				CacheKB: 10, PagingMM: 10, PagingLU: 10, Integration: "medium"},
		}}},
		"bad kernel": {Kernel: "Nope", Processors: []Processor{{
			Name: "x", Spec: &MachineSpec{MHz: 100, MainMemKB: 100, FreeMemKB: 10,
				CacheKB: 10, PagingMM: 10, PagingLU: 10},
		}}},
	}
	for name, c := range cases {
		if _, _, err := c.Functions(1e6); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestConstantDefaultMax(t *testing.T) {
	c := Cluster{Processors: []Processor{{Name: "c", Speed: 10}}}
	fns, _, err := c.Functions(4242)
	if err != nil {
		t.Fatal(err)
	}
	if fns[0].MaxSize() != 4242 {
		t.Errorf("default max = %v, want 4242", fns[0].MaxSize())
	}
}

func TestRoundTripTestbed(t *testing.T) {
	c, err := FromTestbed(machine.Table2(), "LUFact")
	if err != nil {
		t.Fatalf("FromTestbed: %v", err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load(saved): %v", err)
	}
	fns, names, err := back.Functions(0)
	if err != nil {
		t.Fatalf("Functions: %v", err)
	}
	if len(fns) != 12 || names[0] != "X1" {
		t.Fatalf("round trip lost processors: %d, %v", len(fns), names[:1])
	}
	// The expanded functions must match a direct expansion.
	direct, err := machine.Table2()[0].FlopRate(machine.LUFact)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1e5, 1e7, 1e9} {
		if got, want := fns[0].Eval(x), direct.Eval(x); got != want {
			t.Errorf("X1 at %v: %v vs direct %v", x, got, want)
		}
	}
}

func TestFromTestbedErrors(t *testing.T) {
	if _, err := FromTestbed(nil, ""); err == nil {
		t.Error("empty testbed: want error")
	}
	if _, err := FromTestbed(machine.Table1(), "Bogus"); err == nil {
		t.Error("unknown kernel: want error")
	}
}

func TestValidateActionableErrors(t *testing.T) {
	// Load validates before expansion; the message must name the
	// offending processor and say what is wrong with it.
	cases := map[string]struct {
		doc  string
		want string
	}{
		"negative speed": {
			`{"processors": [{"name": "slowpoke", "speed": -3}]}`,
			"slowpoke: negative speed",
		},
		"negative max": {
			`{"processors": [{"name": "m", "speed": 5, "max": -1}]}`,
			"m: negative max",
		},
		"empty point list counts as absent": {
			`{"processors": [{"name": "e", "points": []}]}`,
			"e must have exactly one of",
		},
		"non-monotone point sizes": {
			`{"processors": [{"name": "wiggle",
			   "points": [{"size": 100, "speed": 9}, {"size": 100, "speed": 8}]}]}`,
			"wiggle: point sizes must be strictly increasing",
		},
		"negative point": {
			`{"processors": [{"name": "neg",
			   "points": [{"size": -5, "speed": 9}]}]}`,
			"neg: point 0",
		},
		"non-monotone level thresholds": {
			`{"processors": [{"name": "stairs",
			   "levels": [{"upTo": 10, "speed": 2}, {"upTo": 10, "speed": 1}]}]}`,
			"stairs: level thresholds must be strictly increasing",
		},
		"non-positive level threshold": {
			`{"processors": [{"name": "flat",
			   "levels": [{"upTo": 0, "speed": 2}]}]}`,
			"flat: level 0",
		},
		"bad fault spec": {
			`{"processors": [{"name": "ok", "speed": 5}],
			  "faults": ["ok@noon"]}`,
			"bad fault spec",
		},
		"fault names unknown processor": {
			`{"processors": [{"name": "ok", "speed": 5}],
			  "faults": ["gone@t=1s"]}`,
			"bad fault spec",
		},
	}
	for name, tc := range cases {
		_, err := Load(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: want error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

func TestFaultSpecsRoundTrip(t *testing.T) {
	c := Cluster{
		Processors: []Processor{
			{Name: "X1", Speed: 500, Max: 1e9},
			{Name: "X2", Speed: 250, Max: 1e9},
		},
		Faults: []string{
			"X1@t=1.5s",
			"X2@t=1s,slow=0.4,for=2s",
			"link@t=0.5s,for=1s",
		},
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load(saved): %v", err)
	}
	if len(back.Faults) != 3 || back.Faults[0] != "X1@t=1.5s" {
		t.Fatalf("faults lost in round trip: %v", back.Faults)
	}
	plan, err := back.FaultPlan()
	if err != nil {
		t.Fatalf("FaultPlan: %v", err)
	}
	if len(plan.Faults) != 3 {
		t.Fatalf("%d parsed faults, want 3", len(plan.Faults))
	}
	crash := plan.Faults[0]
	if crash.Kind != faults.Crash || crash.Proc != 0 || crash.At != 1.5 {
		t.Errorf("crash parsed as %+v", crash)
	}
	slow := plan.Faults[1]
	if slow.Kind != faults.Slow || slow.Proc != 1 || slow.Factor != 0.4 || slow.Duration != 2 {
		t.Errorf("slow parsed as %+v", slow)
	}
	if plan.Faults[2].Kind != faults.LinkDown {
		t.Errorf("link parsed as %+v", plan.Faults[2])
	}
}

func TestFaultPlanUnnamedProcessors(t *testing.T) {
	// Processors without names get procN, usable in specs alongside the
	// positional pN form.
	c := Cluster{
		Processors: []Processor{{Speed: 10}, {Speed: 20}},
		Faults:     []string{"proc1@t=2s", "p0@t=3s"},
	}
	plan, err := c.FaultPlan()
	if err != nil {
		t.Fatalf("FaultPlan: %v", err)
	}
	if len(plan.Faults) != 2 || plan.Faults[0].Proc != 1 || plan.Faults[1].Proc != 0 {
		t.Fatalf("parsed %+v", plan.Faults)
	}
	// An absent faults section is an empty, valid plan.
	c.Faults = nil
	plan, err = c.FaultPlan()
	if err != nil {
		t.Fatalf("FaultPlan(empty): %v", err)
	}
	if !plan.Empty() {
		t.Errorf("empty faults section gave %+v", plan.Faults)
	}
}

func TestLoadFile(t *testing.T) {
	if _, err := LoadFile("/nonexistent/cluster.json"); err == nil {
		t.Error("missing file: want error")
	}
}

func TestExampleClusterFile(t *testing.T) {
	// The file shipped in testdata doubles as the format's documentation;
	// it must load and expand with all four representations.
	c, err := LoadFile("../../testdata/cluster.example.json")
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	fns, names, err := c.Functions(1e9)
	if err != nil {
		t.Fatalf("Functions: %v", err)
	}
	if len(fns) != 4 {
		t.Fatalf("%d processors", len(fns))
	}
	want := []string{"measured-pwl", "legacy-constant", "dlt-staircase", "modelled-xeon"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %q", i, names[i])
		}
	}
}

func TestQualitiesRoundTripAndValidation(t *testing.T) {
	c := &Cluster{Processors: []Processor{{
		Name:   "p0",
		Points: []speed.Point{{X: 100, Y: 1000}, {X: 10000, Y: 10}},
		Qualities: []speed.PointQuality{
			{X: 100, Quality: speed.Quality{Samples: 25, Rejected: 2, RelWidth: 0.01}},
			{X: 10000, Quality: speed.Quality{Samples: 30, Retries: 1, TimedOut: true, RelWidth: 0.04}},
		},
	}}}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load after Save: %v", err)
	}
	q := got.Processors[0].Qualities
	if len(q) != 2 {
		t.Fatalf("qualities = %d after round trip, want 2", len(q))
	}
	if q[0] != c.Processors[0].Qualities[0] || q[1] != c.Processors[0].Qualities[1] {
		t.Errorf("qualities changed in the round trip: %+v", q)
	}

	bad := []struct {
		name string
		mut  func(*Cluster)
		want string
	}{
		{"orphan quality", func(c *Cluster) {
			c.Processors[0].Qualities[1].X = 5000
		}, "not a points knot"},
		{"negative samples", func(c *Cluster) {
			c.Processors[0].Qualities[0].Quality.Samples = -1
		}, "negative"},
		{"qualities without points", func(c *Cluster) {
			c.Processors[0].Points = nil
			c.Processors[0].Speed = 100
		}, "qualities without points"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			cc, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			tc.mut(cc)
			err = cc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
