// Package clusterio defines the JSON description of a heterogeneous
// cluster shared by the command-line tools: a list of processors, each
// with a speed representation — an explicit piecewise linear function
// (measured points), a constant (the single-number legacy model), a
// step function (DLT-style levels), or a modelled machine spec that is
// expanded through the machine package for a named kernel.
package clusterio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"heteropart/internal/faults"
	"heteropart/internal/machine"
	"heteropart/internal/speed"
)

// Processor describes one cluster node. Exactly one of Points, Speed,
// Levels or Spec must be set.
type Processor struct {
	Name string `json:"name"`
	// Points: piecewise linear speed function (elements/second vs
	// elements), e.g. the output of cmd/speedbuild.
	Points []speed.Point `json:"points,omitempty"`
	// Qualities optionally records the measurement quality of the Points
	// knots (cmd/speedbuild's robust pipeline emits them). Entries pair a
	// knot size with its speed.Quality; sizes must match Points knots.
	Qualities []speed.PointQuality `json:"qualities,omitempty"`
	// Speed: constant speed; Max bounds its domain (defaults to the
	// problem size at partitioning time when zero).
	Speed float64 `json:"speed,omitempty"`
	Max   float64 `json:"max,omitempty"`
	// Levels: piecewise constant (step) speed function.
	Levels []speed.Level `json:"levels,omitempty"`
	// Spec: modelled machine expanded with the cluster's kernel.
	Spec *MachineSpec `json:"spec,omitempty"`
}

// MachineSpec mirrors machine.Machine for serialization.
type MachineSpec struct {
	OS          string             `json:"os,omitempty"`
	CPU         string             `json:"cpu,omitempty"`
	MHz         int                `json:"mhz"`
	MainMemKB   int                `json:"mainMemKB"`
	FreeMemKB   int                `json:"freeMemKB"`
	CacheKB     int                `json:"cacheKB"`
	PagingMM    int                `json:"pagingMM"`
	PagingLU    int                `json:"pagingLU"`
	Integration string             `json:"integration,omitempty"` // "low" or "high"
	PeakMFlops  map[string]float64 `json:"peakMFlops,omitempty"`
}

// Cluster is the top-level document.
type Cluster struct {
	// Kernel names the built-in kernel used to expand Spec processors
	// (default "MatrixMult").
	Kernel     string      `json:"kernel,omitempty"`
	Processors []Processor `json:"processors"`
	// Faults optionally schedules injected faults for fault-tolerance
	// runs, one spec per entry in the grammar of faults.ParseSpec with
	// processor names, e.g. "X1@t=1.5s", "X2@t=1s,slow=0.4,for=2s",
	// "link@t=0.5s,for=1s".
	Faults []string `json:"faults,omitempty"`
}

// Load parses and validates a cluster document.
func Load(r io.Reader) (*Cluster, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Cluster
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("clusterio: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks the document shape before any expensive expansion and
// returns actionable errors naming the offending processor: every
// processor must carry exactly one speed representation, measured points
// must have positive speeds and strictly increasing sizes, step levels
// must have increasing thresholds, constants must be positive, and every
// fault spec must parse against the processor names.
func (c *Cluster) Validate() error {
	if len(c.Processors) == 0 {
		return errors.New("clusterio: no processors (add a \"processors\" array)")
	}
	names := make([]string, len(c.Processors))
	for i, p := range c.Processors {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("proc%d", i)
		}
		names[i] = name
		reps := 0
		for _, set := range []bool{len(p.Points) > 0, p.Speed != 0, len(p.Levels) > 0, p.Spec != nil} {
			if set {
				reps++
			}
		}
		if reps != 1 {
			return fmt.Errorf("clusterio: processor %s must have exactly one of points, speed, levels, spec (has %d)", name, reps)
		}
		if p.Speed < 0 {
			return fmt.Errorf("clusterio: processor %s: negative speed %v (speeds are elements/second and must be positive)", name, p.Speed)
		}
		if p.Max < 0 {
			return fmt.Errorf("clusterio: processor %s: negative max %v", name, p.Max)
		}
		for j, pt := range p.Points {
			if pt.X < 0 || pt.Y < 0 {
				return fmt.Errorf("clusterio: processor %s: point %d is (%v, %v); sizes and speeds must be non-negative", name, j, pt.X, pt.Y)
			}
			if j > 0 && pt.X <= p.Points[j-1].X {
				return fmt.Errorf("clusterio: processor %s: point sizes must be strictly increasing, got %v after %v at index %d", name, pt.X, p.Points[j-1].X, j)
			}
		}
		if len(p.Qualities) > 0 {
			if len(p.Points) == 0 {
				return fmt.Errorf("clusterio: processor %s: qualities without points", name)
			}
			if len(p.Qualities) > len(p.Points) {
				return fmt.Errorf("clusterio: processor %s: %d qualities for %d points; at most one quality per knot", name, len(p.Qualities), len(p.Points))
			}
			sizes := make(map[float64]bool, len(p.Points))
			for _, pt := range p.Points {
				sizes[pt.X] = true
			}
			seen := make(map[float64]bool, len(p.Qualities))
			for j, pq := range p.Qualities {
				if !sizes[pq.X] {
					return fmt.Errorf("clusterio: processor %s: quality %d is for size %v, which is not a points knot", name, j, pq.X)
				}
				if seen[pq.X] {
					return fmt.Errorf("clusterio: processor %s: duplicate quality for size %v; the qualities vector must pair each knot at most once", name, pq.X)
				}
				seen[pq.X] = true
				if pq.Quality.Samples < 0 || pq.Quality.Rejected < 0 || pq.Quality.Retries < 0 || pq.Quality.RelWidth < 0 {
					return fmt.Errorf("clusterio: processor %s: quality %d has negative fields (%+v)", name, j, pq.Quality)
				}
			}
		}
		for j, lv := range p.Levels {
			if lv.UpTo <= 0 || lv.Y < 0 {
				return fmt.Errorf("clusterio: processor %s: level %d is (upTo %v, speed %v); thresholds must be positive and speeds non-negative", name, j, lv.UpTo, lv.Y)
			}
			if j > 0 && lv.UpTo <= p.Levels[j-1].UpTo {
				return fmt.Errorf("clusterio: processor %s: level thresholds must be strictly increasing, got %v after %v at index %d", name, lv.UpTo, p.Levels[j-1].UpTo, j)
			}
		}
	}
	if _, err := c.FaultPlan(); err != nil {
		return err
	}
	return nil
}

// FaultPlan parses the document's fault specs against the processor
// names. An absent faults section yields an empty plan.
func (c *Cluster) FaultPlan() (*faults.Plan, error) {
	names := make([]string, len(c.Processors))
	for i, p := range c.Processors {
		names[i] = p.Name
		if names[i] == "" {
			names[i] = fmt.Sprintf("proc%d", i)
		}
	}
	plan, err := faults.ParseSpecs(c.Faults, names)
	if err != nil {
		return nil, fmt.Errorf("clusterio: %w", err)
	}
	return plan, nil
}

// LoadFile reads and parses a cluster file.
func LoadFile(path string) (*Cluster, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Save writes the cluster as indented JSON.
func (c *Cluster) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Functions expands the cluster into named speed functions.
// defaultMax bounds constant-speed processors without an explicit Max.
func (c *Cluster) Functions(defaultMax float64) ([]speed.Function, []string, error) {
	kernelName := c.Kernel
	if kernelName == "" {
		kernelName = machine.MatrixMult.Name
	}
	fns := make([]speed.Function, len(c.Processors))
	names := make([]string, len(c.Processors))
	for i, p := range c.Processors {
		names[i] = p.Name
		if names[i] == "" {
			names[i] = fmt.Sprintf("proc%d", i)
		}
		reps := 0
		for _, set := range []bool{len(p.Points) > 0, p.Speed > 0, len(p.Levels) > 0, p.Spec != nil} {
			if set {
				reps++
			}
		}
		if reps != 1 {
			return nil, nil, fmt.Errorf("clusterio: processor %s must have exactly one of points, speed, levels, spec (has %d)", names[i], reps)
		}
		switch {
		case len(p.Points) > 0:
			f, err := speed.NewPiecewiseLinear(p.Points)
			if err != nil {
				return nil, nil, fmt.Errorf("clusterio: processor %s: %w", names[i], err)
			}
			fns[i] = f
		case p.Speed > 0:
			maxSize := p.Max
			if maxSize == 0 {
				maxSize = defaultMax
			}
			f, err := speed.NewConstant(p.Speed, maxSize)
			if err != nil {
				return nil, nil, fmt.Errorf("clusterio: processor %s: %w", names[i], err)
			}
			fns[i] = f
		case len(p.Levels) > 0:
			f, err := speed.NewStep(p.Levels)
			if err != nil {
				return nil, nil, fmt.Errorf("clusterio: processor %s: %w", names[i], err)
			}
			fns[i] = f
		default:
			m, err := p.Spec.toMachine(names[i])
			if err != nil {
				return nil, nil, err
			}
			k, err := machine.KernelByName(kernelName)
			if err != nil {
				return nil, nil, fmt.Errorf("clusterio: %w", err)
			}
			f, err := m.FlopRate(k)
			if err != nil {
				return nil, nil, err
			}
			fns[i] = f
		}
	}
	return fns, names, nil
}

func (s *MachineSpec) toMachine(name string) (machine.Machine, error) {
	integ := machine.LowIntegration
	switch s.Integration {
	case "", "low":
	case "high":
		integ = machine.HighIntegration
	default:
		return machine.Machine{}, fmt.Errorf("clusterio: processor %s: unknown integration %q", name, s.Integration)
	}
	m := machine.Machine{
		Spec: machine.Spec{
			Name: name, OS: s.OS, CPU: s.CPU,
			MHz: s.MHz, MainMemKB: s.MainMemKB, FreeMemKB: s.FreeMemKB,
			CacheKB: s.CacheKB, PagingMM: s.PagingMM, PagingLU: s.PagingLU,
		},
		Integration: integ,
		PeakMFlops:  s.PeakMFlops,
	}
	if err := m.Validate(); err != nil {
		return machine.Machine{}, fmt.Errorf("clusterio: %w", err)
	}
	return m, nil
}

// FromTestbed exports a machine testbed as a cluster document whose
// processors carry the full specs, expandable for any kernel.
func FromTestbed(ms []machine.Machine, kernel string) (*Cluster, error) {
	if len(ms) == 0 {
		return nil, errors.New("clusterio: empty testbed")
	}
	if kernel != "" {
		if _, err := machine.KernelByName(kernel); err != nil {
			return nil, fmt.Errorf("clusterio: %w", err)
		}
	}
	c := &Cluster{Kernel: kernel}
	for _, m := range ms {
		integ := "low"
		if m.Integration == machine.HighIntegration {
			integ = "high"
		}
		c.Processors = append(c.Processors, Processor{
			Name: m.Name,
			Spec: &MachineSpec{
				OS: m.OS, CPU: m.CPU, MHz: m.MHz,
				MainMemKB: m.MainMemKB, FreeMemKB: m.FreeMemKB, CacheKB: m.CacheKB,
				PagingMM: m.PagingMM, PagingLU: m.PagingLU,
				Integration: integ, PeakMFlops: m.PeakMFlops,
			},
		})
	}
	return c, nil
}
