package grid_test

import (
	"fmt"
	"log"

	"heteropart/internal/grid"
	"heteropart/internal/speed"
)

// Partition a 60×60 element grid over three processors with 1:2:3 speeds:
// areas come out proportional and the rectangles tile the grid exactly.
func ExamplePartition2D() {
	fns := []speed.Function{
		speed.MustConstant(100, 1e9),
		speed.MustConstant(200, 1e9),
		speed.MustConstant(300, 1e9),
	}
	res, err := grid.Partition2D(60, 60, fns, grid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := grid.Validate(60, 60, res.Rects); err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, r := range res.Rects {
		total += r.Area()
	}
	fmt.Println("cells covered:", total)
	fmt.Println("fastest got the largest share:",
		res.Rects[2].Area() > res.Rects[1].Area() && res.Rects[1].Area() > res.Rects[0].Area())
	// Output:
	// cells covered: 3600
	// fastest got the largest share: true
}
