package grid

import (
	"math"
	"testing"
	"testing/quick"

	"heteropart/internal/core"
	"heteropart/internal/speed"
)

func constFns(speeds ...float64) []speed.Function {
	fns := make([]speed.Function, len(speeds))
	for i, s := range speeds {
		fns[i] = speed.MustConstant(s, 1e12)
	}
	return fns
}

func TestRectHelpers(t *testing.T) {
	r := Rect{X0: 1, Y0: 2, X1: 4, Y1: 7}
	if r.Area() != 15 {
		t.Errorf("Area = %d, want 15", r.Area())
	}
	if r.SemiPerimeter() != 8 {
		t.Errorf("SemiPerimeter = %d, want 8", r.SemiPerimeter())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !(Rect{}).Empty() {
		t.Error("zero rect must be empty")
	}
	if r.String() == "" {
		t.Error("String must be non-empty")
	}
}

func TestPartition2DTilesExactly(t *testing.T) {
	fns := constFns(100, 250, 50, 400, 200)
	res, err := Partition2D(60, 40, fns, Options{})
	if err != nil {
		t.Fatalf("Partition2D: %v", err)
	}
	if err := Validate(60, 40, res.Rects); err != nil {
		t.Fatalf("tiling invalid: %v", err)
	}
}

func TestPartition2DProportionalAreas(t *testing.T) {
	fns := constFns(100, 300) // 1:3
	res, err := Partition2D(40, 40, fns, Options{})
	if err != nil {
		t.Fatalf("Partition2D: %v", err)
	}
	a0, a1 := res.Rects[0].Area(), res.Rects[1].Area()
	if a0+a1 != 1600 {
		t.Fatalf("areas %d+%d ≠ 1600", a0, a1)
	}
	ratio := float64(a1) / float64(a0)
	if ratio < 2.3 || ratio > 3.8 {
		t.Errorf("area ratio %.2f, want ≈ 3 (rounding slack allowed)", ratio)
	}
}

func TestPartition2DSingleProcessor(t *testing.T) {
	res, err := Partition2D(7, 5, constFns(10), Options{})
	if err != nil {
		t.Fatalf("Partition2D: %v", err)
	}
	want := Rect{X0: 0, Y0: 0, X1: 7, Y1: 5}
	if res.Rects[0] != want {
		t.Errorf("rect = %v, want %v", res.Rects[0], want)
	}
}

func TestPartition2DForcedColumns(t *testing.T) {
	fns := constFns(1, 1, 1, 1)
	res, err := Partition2D(20, 20, fns, Options{Columns: 1})
	if err != nil {
		t.Fatalf("Partition2D: %v", err)
	}
	if err := Validate(20, 20, res.Rects); err != nil {
		t.Fatalf("tiling invalid: %v", err)
	}
	// One column: every rectangle spans the full width.
	for i, r := range res.Rects {
		if r.X0 != 0 || r.X1 != 20 {
			t.Errorf("rect %d = %v, want full width", i, r)
		}
	}
}

func TestPartition2DSizeDependentSpeeds(t *testing.T) {
	// A processor that pages at 300 cells must receive a small rectangle
	// despite the same peak as its partner.
	fns := []speed.Function{
		&speed.Analytic{Peak: 1e6, HalfRise: 1, Max: 1e7},
		&speed.Analytic{Peak: 1e6, HalfRise: 1,
			PagingPoint: 300, PagingWidth: 50, PagingFloor: 0.01, Max: 1e7},
	}
	res, err := Partition2D(40, 40, fns, Options{})
	if err != nil {
		t.Fatalf("Partition2D: %v", err)
	}
	if err := Validate(40, 40, res.Rects); err != nil {
		t.Fatal(err)
	}
	if res.Rects[1].Area() >= res.Rects[0].Area() {
		t.Errorf("paging processor got %d ≥ %d cells", res.Rects[1].Area(), res.Rects[0].Area())
	}
}

func TestPartition2DErrors(t *testing.T) {
	if _, err := Partition2D(0, 5, constFns(1), Options{}); err == nil {
		t.Error("n1=0: want error")
	}
	if _, err := Partition2D(5, -1, constFns(1), Options{}); err == nil {
		t.Error("n2<0: want error")
	}
	if _, err := Partition2D(5, 5, nil, Options{}); err == nil {
		t.Error("no processors: want error")
	}
}

func TestProportional(t *testing.T) {
	out, err := proportional([]int64{1, 3}, 8)
	if err != nil {
		t.Fatalf("proportional: %v", err)
	}
	if out[0] != 2 || out[1] != 6 {
		t.Errorf("out = %v, want [2 6]", out)
	}
	// All-zero weights: even split.
	out, err = proportional([]int64{0, 0, 0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]+out[1]+out[2] != 7 {
		t.Errorf("zero weights split = %v", out)
	}
	if _, err := proportional([]int64{-1}, 5); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := proportional(nil, 5); err == nil {
		t.Error("no weights: want error")
	}
	if _, err := proportional([]int64{1}, -1); err == nil {
		t.Error("negative total: want error")
	}
}

func TestValidateDetectsBadTilings(t *testing.T) {
	// Overlap.
	over := []Rect{{0, 0, 2, 2}, {1, 1, 3, 3}}
	if err := Validate(3, 3, over); err == nil {
		t.Error("overlap undetected")
	}
	// Gap.
	gap := []Rect{{0, 0, 2, 3}}
	if err := Validate(3, 3, gap); err == nil {
		t.Error("gap undetected")
	}
	// Out of bounds.
	oob := []Rect{{0, 0, 4, 3}}
	if err := Validate(3, 3, oob); err == nil {
		t.Error("out of bounds undetected")
	}
}

func TestTotalSemiPerimeter(t *testing.T) {
	rects := []Rect{{0, 0, 2, 3}, {}, {2, 0, 4, 3}}
	if got := TotalSemiPerimeter(rects); got != 10 {
		t.Errorf("TotalSemiPerimeter = %d, want 10", got)
	}
}

func TestMoreColumnsRaisePerimeter(t *testing.T) {
	// For equal processors on a square grid, a single column (p slices)
	// has a worse total semi-perimeter than the √p×√p arrangement.
	fns := constFns(1, 1, 1, 1, 1, 1, 1, 1, 1)
	sliced, err := Partition2D(90, 90, fns, Options{Columns: 1})
	if err != nil {
		t.Fatal(err)
	}
	squarish, err := Partition2D(90, 90, fns, Options{Columns: 3})
	if err != nil {
		t.Fatal(err)
	}
	if TotalSemiPerimeter(squarish.Rects) >= TotalSemiPerimeter(sliced.Rects) {
		t.Errorf("3 columns %d ≥ 1 column %d",
			TotalSemiPerimeter(squarish.Rects), TotalSemiPerimeter(sliced.Rects))
	}
}

// Property: Partition2D always produces an exact tiling with areas within
// integer-rounding distance of proportionality.
func TestPartition2DProperty(t *testing.T) {
	check := func(w8, h8, pSeed uint8, s1, s2, s3 uint16) bool {
		n1 := 1 + int(w8%50)
		n2 := 1 + int(h8%50)
		speeds := []float64{1 + float64(s1), 1 + float64(s2), 1 + float64(s3)}
		p := 1 + int(pSeed%3)
		fns := constFns(speeds[:p]...)
		res, err := Partition2D(n1, n2, fns, Options{})
		if err != nil {
			return false
		}
		if Validate(n1, n2, res.Rects) != nil {
			return false
		}
		var sum int64
		for _, r := range res.Rects {
			sum += r.Area()
		}
		return sum == int64(n1)*int64(n2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with a single processor the whole grid is one rectangle.
func TestPartition2DWholeGridProperty(t *testing.T) {
	check := func(w8, h8 uint8) bool {
		n1, n2 := 1+int(w8%64), 1+int(h8%64)
		res, err := Partition2D(n1, n2, constFns(5), Options{})
		if err != nil {
			return false
		}
		return res.Rects[0] == Rect{X0: 0, Y0: 0, X1: n1, Y1: n2}
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPartition2DNearPagingCliff(t *testing.T) {
	// A processor whose speed cliff sits inside its share: rounding a few
	// cells swings its time strongly; the arrangement search must still
	// return a tiling whose realized makespan matches Result.Makespan and
	// stays within a modest factor of the other processor's time.
	fns := []speed.Function{
		&speed.Analytic{Peak: 1e6, HalfRise: 10, PagingPoint: 500,
			PagingWidth: 100, PagingFloor: 0.05, Max: 1e7},
		speed.MustConstant(5e5, 1e7),
	}
	res, err := Partition2D(50, 50, fns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(50, 50, res.Rects); err != nil {
		t.Fatal(err)
	}
	if res.Columns < 1 {
		t.Errorf("Columns = %d", res.Columns)
	}
	var worst float64
	for i, r := range res.Rects {
		if r.Empty() {
			continue
		}
		worst = math.Max(worst, float64(r.Area())/fns[i].Eval(float64(r.Area())))
	}
	if math.Abs(worst-res.Makespan) > 1e-12*worst {
		t.Errorf("Makespan %v does not match realized %v", res.Makespan, worst)
	}
	// Sanity: no worse than giving everything to the constant processor.
	allConst := 2500.0 / 5e5
	if res.Makespan > allConst {
		t.Errorf("makespan %v worse than trivial bound %v", res.Makespan, allConst)
	}
}

func TestArrangeRespectsAllocation(t *testing.T) {
	areas := core.Allocation{100, 300, 0, 200}
	rects, err := arrange(30, 20, areas, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(30, 20, rects); err != nil {
		t.Fatal(err)
	}
	// Zero-target processor may end up empty.
	var sum int64
	for _, r := range rects {
		sum += r.Area()
	}
	if sum != 600 {
		t.Errorf("areas sum to %d, want 600", sum)
	}
}

func TestArrangeZeroAreaProcessors(t *testing.T) {
	// Regression: zero-area processors used to leave LPT columns without
	// members, failing the width apportioning ("grid: no weights").
	rects, err := arrange(1, 3, core.Allocation{0, 0, 3}, 3)
	if err != nil {
		t.Fatalf("arrange: %v", err)
	}
	if err := Validate(1, 3, rects); err != nil {
		t.Fatal(err)
	}
	res, err := Partition2D(1, 3, constFns(3380, 4537, 19384), Options{})
	if err != nil {
		t.Fatalf("Partition2D: %v", err)
	}
	if err := Validate(1, 3, res.Rects); err != nil {
		t.Fatal(err)
	}
}
