// Package grid implements the multi-dimensional extension of the
// set-partitioning problem that §3.1 of the paper sketches: when the
// problem size has two parameters and neither is fixed, the speed
// functions become surfaces and the optimal geometric solution divides an
// N1×N2 element grid into p rectangles whose areas are proportional to the
// processor speeds at those areas.
//
// Because the paper's own experiments reduce the surface to a line by
// fixing one parameter, the speed argument here is the rectangle's area in
// elements — the same one-parameter functional model — and the package
// contributes the second half of the problem: arranging the proportional
// areas into an exact rectangular tiling of the grid.
//
// The arrangement uses the column heuristic of the heterogeneous-ScaLAPACK
// line of work the paper builds on (reference [6]): processors are packed
// into ⌈√p⌉ columns balanced by area, each column becomes a vertical strip
// whose width is proportional to its area, and every strip is cut
// horizontally in proportion to its processors' areas. Optionally the
// area→speed→area assignment is iterated to a fixed point, since a
// processor's speed depends on the area it finally receives.
package grid

import (
	"fmt"
	"math"
	"sort"

	"heteropart/internal/core"
	"heteropart/internal/speed"
)

// Rect is a half-open rectangle of grid cells: columns [X0, X1), rows
// [Y0, Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Area returns the number of cells in the rectangle.
func (r Rect) Area() int64 {
	return int64(r.X1-r.X0) * int64(r.Y1-r.Y0)
}

// SemiPerimeter returns width + height, the per-processor communication
// proxy of the heterogeneous matrix-multiplication literature (a processor
// owning a w×h block exchanges O(w+h) boundary data per iteration).
func (r Rect) SemiPerimeter() int64 {
	return int64(r.X1-r.X0) + int64(r.Y1-r.Y0)
}

// Empty reports whether the rectangle contains no cells.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)×[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// Result is a 2D partitioning outcome.
type Result struct {
	// Rects[i] is processor i's rectangle; empty rectangles are allowed
	// for processors whose proportional share rounded to zero.
	Rects []Rect
	// Stats carries the underlying 1D partitioning statistics.
	Stats core.Stats
	// Columns is the number of vertical strips of the chosen arrangement.
	Columns int
	// Makespan is the realized parallel time of the chosen arrangement:
	// max over processors of area / speed(area).
	Makespan float64
}

// Options configures Partition2D.
type Options struct {
	// Columns forces the number of vertical strips; 0 evaluates all
	// candidate counts from 1 to ⌈√p⌉+2 and keeps the arrangement with
	// the smallest realized makespan (integer rounding of widths and
	// heights distorts each arrangement differently — near a paging
	// cliff, a few cells swing a processor's time substantially — so the
	// realized times, not the target areas, decide).
	Columns int
	// Core options are forwarded to the 1D partitioner.
	Core []core.Option
}

// Partition2D tiles an n1-column × n2-row grid over the processors so
// that rectangle areas are proportional to the speed functions evaluated
// at those areas.
func Partition2D(n1, n2 int, fns []speed.Function, opt Options) (Result, error) {
	if n1 <= 0 || n2 <= 0 {
		return Result{}, fmt.Errorf("grid: invalid grid %d×%d", n1, n2)
	}
	p := len(fns)
	if p == 0 {
		return Result{}, core.ErrNoProcessors
	}
	total := int64(n1) * int64(n2)

	// Proportional areas from the functional model.
	res, err := core.Combined(total, fns, opt.Core...)
	if err != nil {
		return Result{}, fmt.Errorf("grid: partitioning %d cells: %w", total, err)
	}
	candidates := []int{opt.Columns}
	if opt.Columns <= 0 {
		max := int(math.Ceil(math.Sqrt(float64(p)))) + 2
		if max > p {
			max = p
		}
		candidates = candidates[:0]
		for c := 1; c <= max; c++ {
			candidates = append(candidates, c)
		}
	}
	out := Result{Stats: res.Stats, Makespan: math.Inf(1)}
	for _, c := range candidates {
		rects, err := arrange(n1, n2, res.Alloc, c)
		if err != nil {
			return Result{}, err
		}
		ms := realizedMakespan(rects, fns)
		better := ms < out.Makespan ||
			(ms == out.Makespan && out.Rects != nil &&
				TotalSemiPerimeter(rects) < TotalSemiPerimeter(out.Rects))
		if out.Rects == nil || better {
			out.Rects, out.Columns, out.Makespan = rects, c, ms
		}
	}
	return out, nil
}

// realizedMakespan evaluates the parallel time of an arrangement under
// the true speed functions.
func realizedMakespan(rects []Rect, fns []speed.Function) float64 {
	var worst float64
	for i, r := range rects {
		a := float64(r.Area())
		if a == 0 {
			continue
		}
		s := fns[i].Eval(a)
		if s <= 0 {
			return math.Inf(1)
		}
		worst = math.Max(worst, a/s)
	}
	return worst
}

// arrange turns target areas into an exact tiling: processors are packed
// into columns balanced by area (LPT), column widths are proportional to
// column areas, and each column is sliced horizontally.
func arrange(n1, n2 int, areas core.Allocation, columns int) ([]Rect, error) {
	p := len(areas)
	if columns <= 0 {
		columns = int(math.Ceil(math.Sqrt(float64(p))))
	}
	if columns > p {
		columns = p
	}
	// LPT packing of processors into columns by target area.
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return areas[order[a]] > areas[order[b]] })
	colMembers := make([][]int, columns)
	colArea := make([]int64, columns)
	for _, i := range order {
		best := 0
		for c := 1; c < columns; c++ {
			if colArea[c] < colArea[best] {
				best = c
			}
		}
		colMembers[best] = append(colMembers[best], i)
		colArea[best] += areas[i]
	}
	// Zero-area processors can leave trailing columns without members
	// (LPT's strict tie-break never reaches them); such columns get no
	// width, so drop them before apportioning.
	live := colMembers[:0]
	liveArea := colArea[:0]
	for c := range colMembers {
		if len(colMembers[c]) > 0 {
			live = append(live, colMembers[c])
			liveArea = append(liveArea, colArea[c])
		}
	}
	// Column widths by largest remainder over n1.
	widths, err := proportional(liveArea, n1)
	if err != nil {
		return nil, err
	}
	rects := make([]Rect, p)
	x := 0
	for c := range live {
		w := widths[c]
		memberAreas := make([]int64, len(live[c]))
		for j, i := range live[c] {
			memberAreas[j] = areas[i]
		}
		heights, err := proportional(memberAreas, n2)
		if err != nil {
			return nil, err
		}
		y := 0
		for j, i := range live[c] {
			h := heights[j]
			rects[i] = Rect{X0: x, Y0: y, X1: x + w, Y1: y + h}
			y += h
		}
		// Zero-width columns leave their members with empty rectangles.
		if w == 0 {
			for _, i := range live[c] {
				rects[i] = Rect{}
			}
		}
		x += w
	}
	return rects, nil
}

// proportional splits total into len(weights) non-negative integers
// proportional to the weights (largest remainder), summing exactly to
// total. All-zero weights split evenly.
func proportional(weights []int64, total int) ([]int, error) {
	if total < 0 {
		return nil, fmt.Errorf("grid: negative total %d", total)
	}
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("grid: no weights")
	}
	var sum int64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("grid: negative weight %d", w)
		}
		sum += w
	}
	out := make([]int, n)
	if sum == 0 {
		alloc, err := core.Even(int64(total), n)
		if err != nil {
			return nil, err
		}
		for i, a := range alloc {
			out[i] = int(a)
		}
		return out, nil
	}
	type frac struct {
		idx int
		f   float64
	}
	fracs := make([]frac, n)
	used := 0
	for i, w := range weights {
		exact := float64(total) * float64(w) / float64(sum)
		fl := int(math.Floor(exact))
		out[i] = fl
		used += fl
		fracs[i] = frac{idx: i, f: exact - float64(fl)}
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for d := total - used; d > 0; d-- {
		out[fracs[(total-used-d)%n].idx]++
	}
	return out, nil
}

// Validate checks that the rectangles exactly tile the n1×n2 grid: no
// overlaps, full coverage. It is O(total cells) and intended for tests
// and debugging.
func Validate(n1, n2 int, rects []Rect) error {
	covered := make([]bool, n1*n2)
	for i, r := range rects {
		if r.Empty() {
			continue
		}
		if r.X0 < 0 || r.Y0 < 0 || r.X1 > n1 || r.Y1 > n2 {
			return fmt.Errorf("grid: rectangle %d (%v) exceeds grid %d×%d", i, r, n1, n2)
		}
		for x := r.X0; x < r.X1; x++ {
			for y := r.Y0; y < r.Y1; y++ {
				at := y*n1 + x
				if covered[at] {
					return fmt.Errorf("grid: cell (%d,%d) covered twice (rectangle %d)", x, y, i)
				}
				covered[at] = true
			}
		}
	}
	for at, c := range covered {
		if !c {
			return fmt.Errorf("grid: cell (%d,%d) uncovered", at%n1, at/n1)
		}
	}
	return nil
}

// TotalSemiPerimeter sums the communication proxy over non-empty
// rectangles.
func TotalSemiPerimeter(rects []Rect) int64 {
	var s int64
	for _, r := range rects {
		if !r.Empty() {
			s += r.SemiPerimeter()
		}
	}
	return s
}
