#!/bin/sh
# ci.sh — the full merge gate, in one place. Runs every check ROADMAP.md
# names so "what does CI run?" has exactly one answer:
#
#   1. tier-1: go build ./... && go test ./...
#   2. go vet ./...
#   3. go test -race ./internal/...  (the supervisor, the supervised
#      executors, the worker pool and the experiment harness are
#      concurrent by construction)
#   4. explicit race passes that must never drop out of the run:
#      the kernel-perf pair (pool, kernels) and the robustness pair
#      (faults, measure) — the latter exercises deadline abandonment,
#      retry backoff and the drift detector under the race detector
#   5. benchmark smoke: every kernel benchmark runs once
#
# Usage: scripts/ci.sh
set -e
cd "$(dirname "$0")/.."

echo "==> tier-1: go build ./..." >&2
go build ./...
echo "==> tier-1: go test ./..." >&2
go test ./...
echo "==> go vet ./..." >&2
go vet ./...
echo "==> go test -race ./internal/..." >&2
go test -race ./internal/...
echo "==> go test -race ./internal/pool/... ./internal/kernels/... (kernel-perf gate)" >&2
go test -race ./internal/pool/... ./internal/kernels/...
echo "==> go test -race ./internal/faults/... ./internal/measure/... (robustness gate)" >&2
go test -race ./internal/faults/... ./internal/measure/...
echo "==> benchmark smoke: go test -run '^$' -bench Kernel -benchtime=1x ." >&2
go test -run '^$' -bench Kernel -benchtime=1x .
echo "==> all gates green" >&2
