#!/bin/sh
# ci.sh — the full merge gate, in one place. Runs every check ROADMAP.md
# names so "what does CI run?" has exactly one answer:
#
#   1. tier-1: go build ./... && go test ./...
#   2. go vet ./...
#   3. go test -race ./internal/...  (the supervisor, the supervised
#      executors, the worker pool and the experiment harness are
#      concurrent by construction)
#   4. explicit race passes that must never drop out of the run:
#      the kernel-perf pair (pool, kernels) and the robustness pair
#      (faults, measure) — the latter exercises deadline abandonment,
#      retry backoff and the drift detector under the race detector
#   5. explicit race pass for the partition-serving pair (plancache,
#      serve) — a sharded cache with singleflight and a batching engine
#      are the most lock-ordering-sensitive code in the tree
#   6. explicit race pass for the durability pair (store, rpc) — WAL
#      appends race against snapshot compaction, and the daemon's taps
#      cross the cache/store boundary on every admitted plan
#   7. kill-and-restart gate: SIGKILL the daemon mid-load, restart on the
#      same store, and require every answered plan to come back as an
#      exact, bit-identical cache hit
#   8. explicit race pass for the replication layer (replica) — the
#      follower's stream loop races against promotion, reconnect backoff
#      and the shipper's long-poll notify channel
#   9. failover gate: SIGKILL a loaded primary, promote its replica, and
#      require bit-identical warm hits under a higher epoch with zombie
#      frames fenced; plus the link-down/recover plan the pair must
#      survive without divergence
#  10. benchmark smoke: every kernel benchmark and every partition-serving
#      benchmark runs once
#  11. allocation regression guard: the warm partitioner hot path must
#      report exactly 0 allocs/op, the property the serving engine's
#      throughput rests on (the store's persistence taps fire off the
#      hot path, so this gate also guards the daemon's serving loop)
#
# Usage: scripts/ci.sh
set -e
cd "$(dirname "$0")/.."

echo "==> tier-1: go build ./..." >&2
go build ./...
echo "==> tier-1: go test ./..." >&2
go test ./...
echo "==> go vet ./..." >&2
go vet ./...
echo "==> go test -race ./internal/..." >&2
go test -race ./internal/...
echo "==> go test -race ./internal/pool/... ./internal/kernels/... (kernel-perf gate)" >&2
go test -race ./internal/pool/... ./internal/kernels/...
echo "==> go test -race ./internal/faults/... ./internal/measure/... (robustness gate)" >&2
go test -race ./internal/faults/... ./internal/measure/...
echo "==> go test -race ./internal/plancache/... ./internal/serve/... (partition-serving gate)" >&2
go test -race ./internal/plancache/... ./internal/serve/...
echo "==> go test -race ./internal/store/... ./internal/rpc/... (durability gate)" >&2
go test -race ./internal/store/... ./internal/rpc/...
echo "==> kill-and-restart gate: go test -race -run KillAndRestart ./internal/rpc/" >&2
go test -race -count=1 -run KillAndRestart ./internal/rpc/
echo "==> go test -race ./internal/replica/... (replication gate)" >&2
go test -race ./internal/replica/...
echo "==> failover gate: go test -race -run Failover ./internal/rpc/ + link-down pair" >&2
go test -race -count=1 -run Failover ./internal/rpc/
go test -race -count=1 -run 'LinkDown' ./internal/replica/
echo "==> benchmark smoke: go test -run '^$' -bench Kernel -benchtime=1x ." >&2
go test -run '^$' -bench Kernel -benchtime=1x .
echo "==> benchmark smoke: go test -run '^$' -bench PartitionThroughput -benchtime=1x ." >&2
go test -run '^$' -bench PartitionThroughput -benchtime=1x .
echo "==> allocs/op guard: warm partitioner hot path must not allocate" >&2
# 100x amortizes the one-time scratch growth of iteration 1; any steady-state
# allocation pushes the reported allocs/op above 0 and fails the gate.
go test -run '^$' -bench 'PartitionThroughput/.*/warm' -benchtime=100x -benchmem . |
awk '
/^Benchmark.*\/warm/ {
	seen++
	allocs = "?"
	for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") allocs = $i
	printf "    %s: %s allocs/op\n", $1, allocs
	if (allocs != 0) { bad = 1 }
}
END {
	if (bad) { print "FAIL: warm partition path allocates" > "/dev/stderr"; exit 1 }
	if (!seen) { print "FAIL: no warm benchmark output parsed" > "/dev/stderr"; exit 1 }
}'
echo "==> all gates green" >&2
