#!/bin/sh
# ci.sh — the full merge gate, in one place. Runs every check ROADMAP.md
# names so "what does CI run?" has exactly one answer:
#
#   1. tier-1: go build ./... && go test ./...
#   2. go vet ./...
#   3. go test -race ./internal/...  (the supervisor, the supervised
#      executors, the worker pool and the experiment harness are
#      concurrent by construction)
#   4. explicit race passes that must never drop out of the run:
#      the kernel-perf pair (pool, kernels) and the robustness pair
#      (faults, measure) — the latter exercises deadline abandonment,
#      retry backoff and the drift detector under the race detector
#   5. explicit race pass for the partition-serving pair (plancache,
#      serve) — a sharded cache with singleflight and a batching engine
#      are the most lock-ordering-sensitive code in the tree
#   6. explicit race pass for the durability pair (store, rpc) — WAL
#      appends race against snapshot compaction, and the daemon's taps
#      cross the cache/store boundary on every admitted plan
#   7. kill-and-restart gate: SIGKILL the daemon mid-load, restart on the
#      same store, and require every answered plan to come back as an
#      exact, bit-identical cache hit
#   8. explicit race pass for the replication layer (replica) — the
#      follower's stream loop races against promotion, reconnect backoff
#      and the shipper's long-poll notify channel
#   9. failover gate: SIGKILL a loaded primary, promote its replica, and
#      require bit-identical warm hits under a higher epoch with zombie
#      frames fenced; plus the link-down/recover plan the pair must
#      survive without divergence
#   9a. explicit race pass for the self-healing layer (watch) — the
#      failure detector's probe loop, election rounds and retargeting
#      all race against the counters /v1/stats reads
#   9b. self-promotion gate: SIGKILL a loaded primary with two watching
#      followers and require the cluster to heal itself — exactly one
#      winner under a bumped epoch, no operator POST, bit-identical warm
#      hits on both survivors, zombie frames fenced
#   9c. handover gate: demote a live primary to its follower and require
#      zero dropped reads, exactly swapped roles, and warm hits after
#  10. explicit race pass for the model layer (speed) — fingerprints and
#      the drift detector are read concurrently by every serving path
#  11. delta-refresh gate: the per-processor refresh tests (delta WAL
#      records, validated replay, selective plan invalidation) under the
#      race detector in both the store and the plan cache
#  12. benchmark smoke: every kernel benchmark, every partition-serving
#      benchmark, the model-refresh benchmark, and the over-HTTP daemon
#      benchmark (a real listening daemon driven by a raw keep-alive
#      client) each run once
#  13. allocation regression guard: the warm partitioner hot path must
#      report exactly 0 allocs/op, the property the serving engine's
#      throughput rests on (the store's persistence taps fire off the
#      hot path, so this gate also guards the daemon's serving loop);
#      and the near-miss warm-start path must stay within its 4 allocs/op
#      budget
#  14. wire-codec allocation guard: the daemon's warm single-request
#      handler path (pooled codec + synchronous cache hit, everything
#      above net/http) must report 0 B/op and 0 allocs/op — the ISSUE 9
#      budget is <= 8 B/op and <= 1 alloc/op; the gate pins the achieved
#      zero so a regression to "just one alloc" still fails loudly
#  15. explicit race pass for the sharded serving fabric (fabric) —
#      tenant stats, token buckets and forwarding counters are hit by
#      every concurrent request path
#  16. forwarding gate: forwarded partition requests must be bit-identical
#      to owner-local answers, and an owner outage must degrade to local
#      compute instead of an error
#  17. fabric benchmark smoke: the owned/forwarded/quota paths each run
#      once over real loopback HTTP
#
# Usage: scripts/ci.sh
set -e
cd "$(dirname "$0")/.."

echo "==> tier-1: go build ./..." >&2
go build ./...
echo "==> tier-1: go test ./..." >&2
go test ./...
echo "==> go vet ./..." >&2
go vet ./...
echo "==> go test -race ./internal/..." >&2
go test -race ./internal/...
echo "==> go test -race ./internal/pool/... ./internal/kernels/... (kernel-perf gate)" >&2
go test -race ./internal/pool/... ./internal/kernels/...
echo "==> go test -race ./internal/faults/... ./internal/measure/... (robustness gate)" >&2
go test -race ./internal/faults/... ./internal/measure/...
echo "==> go test -race ./internal/plancache/... ./internal/serve/... (partition-serving gate)" >&2
go test -race ./internal/plancache/... ./internal/serve/...
echo "==> go test -race ./internal/store/... ./internal/rpc/... (durability gate)" >&2
go test -race ./internal/store/... ./internal/rpc/...
echo "==> kill-and-restart gate: go test -race -run KillAndRestart ./internal/rpc/" >&2
go test -race -count=1 -run KillAndRestart ./internal/rpc/
echo "==> go test -race ./internal/replica/... (replication gate)" >&2
go test -race ./internal/replica/...
echo "==> failover gate: go test -race -run Failover ./internal/rpc/ + link-down pair" >&2
go test -race -count=1 -run Failover ./internal/rpc/
go test -race -count=1 -run 'LinkDown' ./internal/replica/
echo "==> go test -race ./internal/watch/... (self-healing gate)" >&2
go test -race ./internal/watch/...
echo "==> self-promotion gate: go test -race -run SelfPromote ./internal/rpc/" >&2
go test -race -count=1 -run SelfPromote ./internal/rpc/
echo "==> handover gate: go test -race -run Handover ./internal/rpc/" >&2
go test -race -count=1 -run Handover ./internal/rpc/
echo "==> go test -race ./internal/speed/... (model-layer gate)" >&2
go test -race ./internal/speed/...
echo "==> delta-refresh gate: go test -race -run DeltaRefresh ./internal/store/ ./internal/plancache/" >&2
go test -race -count=1 -run DeltaRefresh ./internal/store/ ./internal/plancache/
echo "==> benchmark smoke: go test -run '^$' -bench Kernel -benchtime=1x ." >&2
go test -run '^$' -bench Kernel -benchtime=1x .
echo "==> benchmark smoke: go test -run '^$' -bench PartitionThroughput -benchtime=1x ." >&2
go test -run '^$' -bench PartitionThroughput -benchtime=1x .
echo "==> benchmark smoke: go test -run '^$' -bench ModelRefresh -benchtime=5x ." >&2
go test -run '^$' -bench ModelRefresh -benchtime=5x .
echo "==> benchmark smoke: BENCHTIME=1x scripts/bench_daemon.sh /tmp/bench_daemon_smoke.json" >&2
BENCHTIME=1x scripts/bench_daemon.sh /tmp/bench_daemon_smoke.json
rm -f /tmp/bench_daemon_smoke.json
echo "==> allocs/op guard: warm path 0 allocs, near-miss path <= 4 allocs" >&2
# 100x amortizes the one-time scratch growth of iteration 1; any steady-state
# allocation pushes the reported allocs/op above the budget and fails the gate.
go test -run '^$' -bench 'PartitionThroughput/.*/(warm|nearmiss)' -benchtime=100x -benchmem . |
awk '
/^Benchmark.*\/(warm|nearmiss)/ {
	seen++
	allocs = "?"
	for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") allocs = $i
	printf "    %s: %s allocs/op\n", $1, allocs
	budget = ($1 ~ /\/warm/) ? 0 : 4
	if (allocs == "?" || allocs + 0 > budget) { bad = 1 }
}
END {
	if (bad) { print "FAIL: partition path exceeds its allocs/op budget" > "/dev/stderr"; exit 1 }
	if (!seen) { print "FAIL: no warm/nearmiss benchmark output parsed" > "/dev/stderr"; exit 1 }
}'
echo "==> wire-codec allocs/op guard: warm handler path 0 B/op, 0 allocs/op" >&2
# 200x amortizes the pool warm-up allocations of the first iterations; the
# steady-state handler path owns every byte it touches.
go test -run '^$' -bench 'DaemonHandler/warm' -benchtime=200x -benchmem . |
awk '
/^BenchmarkDaemonHandler\/warm/ {
	seen++
	bop = allocs = "?"
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "B/op") bop = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	printf "    %s: %s B/op, %s allocs/op\n", $1, bop, allocs
	if (bop == "?" || allocs == "?" || bop + 0 > 0 || allocs + 0 > 0) { bad = 1 }
}
END {
	if (bad) { print "FAIL: warm wire handler path allocates" > "/dev/stderr"; exit 1 }
	if (!seen) { print "FAIL: no DaemonHandler/warm benchmark output parsed" > "/dev/stderr"; exit 1 }
}'
echo "==> go test -race ./internal/fabric/... (fabric gate)" >&2
go test -race ./internal/fabric/...
echo "==> forwarding gate: go test -race -run 'FabricForward|FabricOwnerDown' ./internal/rpc/" >&2
go test -race -count=1 -run 'FabricForward|FabricOwnerDown' ./internal/rpc/
echo "==> benchmark smoke: BENCHTIME=1x scripts/bench_fabric.sh /tmp/bench_fabric_smoke.json" >&2
BENCHTIME=1x scripts/bench_fabric.sh /tmp/bench_fabric_smoke.json
rm -f /tmp/bench_fabric_smoke.json
echo "==> all gates green" >&2
