#!/bin/sh
# bench_partition.sh — run the partition-serving benchmarks and emit a JSON
# baseline so later PRs have a perf trajectory for the partitioner hot path,
# plan cache, and warm-start tiers.
#
# Usage:
#
#	scripts/bench_partition.sh [output.json]
#
# Environment:
#
#	BENCHTIME   value for -benchtime (default 100x: enough iterations that
#	            the warm path's one-time scratch growth amortizes to zero
#	            allocs/op; use e.g. 2s for stable numbers on a quiet host)
#	BENCH       -bench pattern (default PartitionThroughput)
#
# The JSON is an array of objects:
#
#	{"name": "...", "n": <iterations>, "ns_per_op": ..., "b_per_op": ...,
#	 "allocs_per_op": ...}
#
# plus a leading metadata object with the host description.
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_partition.json}"
benchtime="${BENCHTIME:-100x}"
pattern="${BENCH:-PartitionThroughput}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$tmp" >&2

awk -v benchtime="$benchtime" '
BEGIN { printf "[\n" }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, "", $0); cpu = $0 }
/^Benchmark/ {
	name = $1
	iters = $2
	ns = bop = allocs = "null"
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bop = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	rows[nrows++] = sprintf("{\"name\": \"%s\", \"n\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}",
		name, iters, ns, bop, allocs)
}
END {
	printf "  {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"benchtime\": \"%s\"}", goos, goarch, cpu, benchtime
	for (i = 0; i < nrows; i++) printf ",\n  %s", rows[i]
	printf "\n]\n"
}' "$tmp" > "$out"
echo "wrote $out" >&2
