#!/bin/sh
# bench_kernels.sh — run the kernel benchmarks and emit a JSON baseline so
# later PRs have a perf trajectory to compare against.
#
# Usage:
#
#	scripts/bench_kernels.sh [output.json]
#
# Environment:
#
#	BENCHTIME   value for -benchtime (default 1x: one timed iteration per
#	            benchmark, the CI smoke setting; use e.g. 2s for stable
#	            numbers on a quiet host)
#	BENCH       -bench pattern (default Kernel)
#
# The JSON is an array of objects:
#
#	{"name": "...", "n": <iterations>, "ns_per_op": ..., "mb_per_s": ...,
#	 "gflop_per_s": ...}
#
# plus a leading metadata object with the host description.
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_kernels.json}"
benchtime="${BENCHTIME:-1x}"
pattern="${BENCH:-Kernel}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . | tee "$tmp" >&2

awk -v benchtime="$benchtime" '
BEGIN { printf "[\n" }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, "", $0); cpu = $0 }
/^Benchmark/ {
	name = $1
	iters = $2
	ns = mbs = gflops = "null"
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "MB/s") mbs = $i
		if ($(i+1) == "GFLOP/s") gflops = $i
	}
	rows[nrows++] = sprintf("{\"name\": \"%s\", \"n\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s, \"gflop_per_s\": %s}",
		name, iters, ns, mbs, gflops)
}
END {
	printf "  {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"benchtime\": \"%s\"}", goos, goarch, cpu, benchtime
	for (i = 0; i < nrows; i++) printf ",\n  %s", rows[i]
	printf "\n]\n"
}' "$tmp" > "$out"
echo "wrote $out" >&2
