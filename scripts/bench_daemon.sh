#!/bin/sh
# bench_daemon.sh — run the over-HTTP daemon benchmarks (a raw keep-alive
# client against a real listening daemon, plus the handler-only paths) and
# emit a JSON baseline so later PRs can track the wire hot path's req/s
# and allocation counts.
#
# Usage:
#
#	scripts/bench_daemon.sh [output.json]
#
# Environment:
#
#	BENCHTIME   value for -benchtime (default 2s; use 1x for a smoke run)
#	BENCH       -bench pattern (default Daemon: both BenchmarkDaemonThroughput
#	            over real HTTP and BenchmarkDaemonHandler without the socket)
#
# The JSON is an array of objects:
#
#	{"name": "...", "n": <iterations>, "ns_per_op": ..., "req_per_s": ...,
#	 "b_per_op": ..., "allocs_per_op": ...}
#
# plus a leading metadata object with the host description. req_per_s is
# null for the handler-only benchmarks (no socket, so no throughput claim).
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_daemon.json}"
benchtime="${BENCHTIME:-2s}"
pattern="${BENCH:-Daemon}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$tmp" >&2

awk -v benchtime="$benchtime" '
BEGIN { printf "[\n" }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, "", $0); cpu = $0 }
/^Benchmark/ {
	name = $1
	iters = $2
	ns = bop = allocs = rps = "null"
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bop = $i
		if ($(i+1) == "allocs/op") allocs = $i
		if ($(i+1) == "req/s") rps = $i
	}
	rows[nrows++] = sprintf("{\"name\": \"%s\", \"n\": %s, \"ns_per_op\": %s, \"req_per_s\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}",
		name, iters, ns, rps, bop, allocs)
}
END {
	printf "  {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"benchtime\": \"%s\"}", goos, goarch, cpu, benchtime
	for (i = 0; i < nrows; i++) printf ",\n  %s", rows[i]
	printf "\n]\n"
}' "$tmp" > "$out"
echo "wrote $out" >&2
