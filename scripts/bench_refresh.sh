#!/bin/sh
# bench_refresh.sh — run the model-refresh benchmarks (full re-upload vs
# per-processor delta) and emit a JSON baseline so later PRs can track the
# refresh path's latency, WAL write amplification, and plan-cache survival.
#
# Usage:
#
#	scripts/bench_refresh.sh [output.json]
#
# Environment:
#
#	BENCHTIME   value for -benchtime (default 200x; use e.g. 2s for stable
#	            numbers on a quiet host)
#	BENCH       -bench pattern (default ModelRefresh)
#
# The JSON is an array of objects:
#
#	{"name": "...", "n": <iterations>, "ns_per_op": ..., "b_per_op": ...,
#	 "allocs_per_op": ..., "wal_bytes_per_op": ..., "pct_invalidated": ...}
#
# plus a leading metadata object with the host description.
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_refresh.json}"
benchtime="${BENCHTIME:-200x}"
pattern="${BENCH:-ModelRefresh}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$tmp" >&2

awk -v benchtime="$benchtime" '
BEGIN { printf "[\n" }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, "", $0); cpu = $0 }
/^Benchmark/ {
	name = $1
	iters = $2
	ns = bop = allocs = wal = pct = "null"
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bop = $i
		if ($(i+1) == "allocs/op") allocs = $i
		if ($(i+1) == "WALbytes/op") wal = $i
		if ($(i+1) == "%invalidated") pct = $i
	}
	rows[nrows++] = sprintf("{\"name\": \"%s\", \"n\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s, \"wal_bytes_per_op\": %s, \"pct_invalidated\": %s}",
		name, iters, ns, bop, allocs, wal, pct)
}
END {
	printf "  {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"benchtime\": \"%s\"}", goos, goarch, cpu, benchtime
	for (i = 0; i < nrows; i++) printf ",\n  %s", rows[i]
	printf "\n]\n"
}' "$tmp" > "$out"
echo "wrote $out" >&2
