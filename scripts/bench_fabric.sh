#!/bin/sh
# bench_fabric.sh — run the sharded-fabric benchmarks (owned vs forwarded
# serving through a two-member fabric, plus the quota-enabled local path)
# and emit a JSON baseline so later PRs can track the cost of the extra
# forwarding hop and the per-tenant admission probe.
#
# Usage:
#
#	scripts/bench_fabric.sh [output.json]
#
# Environment:
#
#	BENCHTIME   value for -benchtime (default 2s; use 1x for a smoke run)
#	BENCH       -bench pattern (default Fabric: BenchmarkFabricForward's
#	            local/forwarded pair and BenchmarkFabricQuota)
#
# The JSON is an array of objects:
#
#	{"name": "...", "n": <iterations>, "ns_per_op": ..., "req_per_s": ...,
#	 "b_per_op": ..., "allocs_per_op": ...}
#
# plus a leading metadata object with the host description.
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_fabric.json}"
benchtime="${BENCHTIME:-2s}"
pattern="${BENCH:-Fabric}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$tmp" >&2

awk -v benchtime="$benchtime" '
BEGIN { printf "[\n" }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, "", $0); cpu = $0 }
/^Benchmark/ {
	name = $1
	iters = $2
	ns = bop = allocs = rps = "null"
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bop = $i
		if ($(i+1) == "allocs/op") allocs = $i
		if ($(i+1) == "req/s") rps = $i
	}
	rows[nrows++] = sprintf("{\"name\": \"%s\", \"n\": %s, \"ns_per_op\": %s, \"req_per_s\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}",
		name, iters, ns, rps, bop, allocs)
}
END {
	printf "  {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"benchtime\": \"%s\"}", goos, goarch, cpu, benchtime
	for (i = 0; i < nrows; i++) printf ",\n  %s", rows[i]
	printf "\n]\n"
}' "$tmp" > "$out"
echo "wrote $out" >&2
