package heteropart

// Over-HTTP daemon benchmarks: where BENCH_partition.json measures the
// in-process serving engine, these measure what a client actually sees —
// the hetpartd wire path, request parse to response bytes. Two levels:
//
//   - BenchmarkDaemonThroughput drives a real daemon over loopback HTTP
//     with keep-alive connections: warm single requests, batched
//     requests, an error mix, and a cold-miss mix. The req/s metric is
//     the daemon's end-to-end ceiling on this host.
//   - BenchmarkDaemonHandler calls the daemon's handler directly with a
//     recycled request/response pair, so B/op and allocs/op describe the
//     handler path itself with net/http's per-connection machinery
//     excluded. ci.sh gates the warm path at <= 1 alloc/op and <= 8 B/op.
//
// scripts/bench_daemon.sh records both into BENCH_daemon.json.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"heteropart/internal/clusterio"
	"heteropart/internal/rpc"
	"heteropart/internal/speed"
)

// benchClusterDoc builds a deterministic clusterio document with p
// processors (the same generator the rpc tests use).
func benchClusterDoc(p int, seed uint32) []byte {
	doc := clusterio.Cluster{}
	s := seed
	for i := 0; i < p; i++ {
		s = s*1664525 + 1013904223
		peak := 1e7 * (1 + float64(s%900)/100)
		s = s*1664525 + 1013904223
		paging := 1e7 * (1 + float64(s%50))
		a := &speed.Analytic{
			Peak: peak, HalfRise: 1e3, CacheEdge: 1e5, CacheDecay: 0.8,
			PagingPoint: paging, PagingWidth: paging / 5, PagingFloor: 0.02,
			Max: 2e9,
		}
		pts := make([]speed.Point, 0, 12)
		for x := 1e3; x < a.Max; x *= 8 {
			pts = append(pts, speed.Point{X: x, Y: a.Eval(x)})
		}
		pts = append(pts, speed.Point{X: a.Max, Y: a.Eval(a.Max)})
		doc.Processors = append(doc.Processors, clusterio.Processor{
			Name:   fmt.Sprintf("p%d", i),
			Points: speed.EnforceShape(pts),
		})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return data
}

// startBenchDaemon boots a daemon over a fresh store, uploads a model
// labeled "m", and returns its base URL.
func startBenchDaemon(b *testing.B) string {
	b.Helper()
	d, err := rpc.New(rpc.Config{Addr: "127.0.0.1:0", Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := d.Listen()
	if err != nil {
		b.Fatal(err)
	}
	go d.Serve()
	b.Cleanup(func() { d.Shutdown(b.Context()) })
	base := "http://" + addr.String()
	resp, err := http.Post(base+"/v1/models?label=m", "application/json",
		bytes.NewReader(benchClusterDoc(8, 77)))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("model upload: HTTP %d", resp.StatusCode)
	}
	return base
}

// rawConn is a keep-alive HTTP/1.1 load-generator connection: requests
// are preformatted bytes, responses are parsed just enough to find the
// status and drain the body. The client side of the benchmark must cost
// less than the server under test — net/http's client would cost more.
type rawConn struct {
	c  net.Conn
	br *bufio.Reader
}

func dialRaw(b *testing.B, addr string) *rawConn {
	b.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return &rawConn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// rawRequest formats one complete HTTP/1.1 request.
func rawRequest(path string, body []byte) []byte {
	return []byte(fmt.Sprintf(
		"POST %s HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		path, len(body), body))
}

// send writes req (which may hold several pipelined requests) and reads
// count responses, asserting each status.
func (rc *rawConn) send(b *testing.B, req []byte, count int, wantStatus string) {
	if _, err := rc.c.Write(req); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < count; i++ {
		line, err := rc.br.ReadString('\n')
		if err != nil {
			b.Fatal(err)
		}
		if !strings.HasPrefix(line, wantStatus) {
			b.Fatalf("status %q, want prefix %q", line, wantStatus)
		}
		length, chunked := -1, false
		for {
			h, err := rc.br.ReadString('\n')
			if err != nil {
				b.Fatal(err)
			}
			if h == "\r\n" {
				break
			}
			if v, ok := strings.CutPrefix(h, "Content-Length: "); ok {
				length, err = strconv.Atoi(strings.TrimSpace(v))
				if err != nil {
					b.Fatal(err)
				}
			}
			if strings.HasPrefix(h, "Transfer-Encoding: chunked") {
				chunked = true
			}
		}
		switch {
		case chunked:
			// Large responses (a batch of replies) exceed net/http's
			// buffering threshold and arrive chunked: hex-size frames
			// terminated by a zero chunk.
			for {
				sz, err := rc.br.ReadString('\n')
				if err != nil {
					b.Fatal(err)
				}
				n, err := strconv.ParseInt(strings.TrimSpace(sz), 16, 64)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rc.br.Discard(int(n) + 2); err != nil { // chunk + CRLF
					b.Fatal(err)
				}
				if n == 0 {
					break
				}
			}
		case length >= 0:
			if _, err := rc.br.Discard(length); err != nil {
				b.Fatal(err)
			}
		default:
			b.Fatalf("response %d without Content-Length (status %q)", i, line)
		}
	}
}

// BenchmarkDaemonThroughput measures the daemon end to end over loopback
// HTTP with keep-alive connections. The req/s metric counts partition
// requests: a pipelined burst of 16 counts 16, as does a batch of 16.
func BenchmarkDaemonThroughput(b *testing.B) {
	base := startBenchDaemon(b)
	addr := strings.TrimPrefix(base, "http://")

	warmBody := []byte(`{"model":"m","n":5000000}`)
	const batchSize = 16
	var batchBody bytes.Buffer
	batchBody.WriteString(`{"requests":[`)
	for i := 0; i < batchSize; i++ {
		if i > 0 {
			batchBody.WriteByte(',')
		}
		fmt.Fprintf(&batchBody, `{"model":"m","n":%d}`, 5_000_000+int64(i)*100_000)
	}
	batchBody.WriteString(`]}`)

	warmReq := rawRequest("/v1/partition", warmBody)
	batchReq := rawRequest("/v1/partition", batchBody.Bytes())
	errReq := rawRequest("/v1/partition", []byte(`{"model":"nosuch","n":5000000}`))
	pipeReq := bytes.Repeat(warmReq, batchSize)

	// Warm the cache past the doorkeeper: twice per distinct key.
	warmup := dialRaw(b, addr)
	for i := 0; i < 2; i++ {
		warmup.send(b, warmReq, 1, "HTTP/1.1 200")
		warmup.send(b, batchReq, 1, "HTTP/1.1 200")
	}

	// responses = HTTP responses per iteration; served = partition
	// requests answered per iteration (a batch answers 16 in 1 response).
	run := func(name string, responses, served int, req []byte, wantStatus string) {
		b.Run(name, func(b *testing.B) {
			rc := dialRaw(b, addr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rc.send(b, req, responses, wantStatus)
			}
			b.ReportMetric(float64(b.N*served)/b.Elapsed().Seconds(), "req/s")
		})
	}

	run("warm", 1, 1, warmReq, "HTTP/1.1 200")
	run("warmpipe16", batchSize, batchSize, pipeReq, "HTTP/1.1 200")
	run("batch16", 1, batchSize, batchReq, "HTTP/1.1 200")
	run("errors", 1, 1, errReq, "HTTP/1.1 400")
	b.Run("coldmix", func(b *testing.B) {
		rc := dialRaw(b, addr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"model":"m","n":%d}`, 10_000_000+int64(i)*1_000)
			rc.send(b, rawRequest("/v1/partition", []byte(body)), 1, "HTTP/1.1 200")
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
}

// replayBody is an io.ReadCloser the handler benchmark rewinds between
// iterations, so one request value serves every iteration.
type replayBody struct {
	data []byte
	off  int
}

func (rb *replayBody) Read(p []byte) (int, error) {
	if rb.off >= len(rb.data) {
		return 0, io.EOF
	}
	n := copy(p, rb.data[rb.off:])
	rb.off += n
	return n, nil
}
func (rb *replayBody) Close() error { return nil }
func (rb *replayBody) rewind()      { rb.off = 0 }

// nullResponseWriter discards the response while recording the status,
// allocating nothing per request.
type nullResponseWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) WriteHeader(c int)   { w.code = c }
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = 200
	}
	w.n += len(p)
	return len(p), nil
}

// handlerRig is a daemon plus a recycled request/response pair aimed at
// one route.
type handlerRig struct {
	h    http.Handler
	req  *http.Request
	body *replayBody
	w    *nullResponseWriter
}

func newHandlerRig(b *testing.B, h http.Handler, method, target string, body []byte) *handlerRig {
	b.Helper()
	req, err := http.NewRequest(method, "http://bench"+target, nil)
	if err != nil {
		b.Fatal(err)
	}
	rb := &replayBody{data: body}
	req.Body = rb
	req.ContentLength = int64(len(body))
	return &handlerRig{h: h, req: req, body: rb, w: &nullResponseWriter{h: make(http.Header)}}
}

// do replays the canned request through the handler once.
func (r *handlerRig) do(b *testing.B, wantCode int) {
	r.body.rewind()
	r.w.code = 0
	r.w.n = 0
	r.h.ServeHTTP(r.w, r.req)
	if r.w.code != wantCode {
		b.Fatalf("handler answered HTTP %d, want %d", r.w.code, wantCode)
	}
}

// BenchmarkDaemonHandler measures the handler path with net/http's
// connection machinery excluded: B/op and allocs/op here are the wire
// codec's own footprint. The warm path is gated in ci.sh.
func BenchmarkDaemonHandler(b *testing.B) {
	d, err := rpc.New(rpc.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Shutdown(b.Context()) })
	h := d.Handler()

	upload := newHandlerRig(b, h, http.MethodPost, "/v1/models?label=m", benchClusterDoc(8, 77))
	upload.do(b, 200)

	warm := newHandlerRig(b, h, http.MethodPost, "/v1/partition", []byte(`{"model":"m","n":5000000}`))
	warm.do(b, 200)
	warm.do(b, 200) // past the doorkeeper: the plan is resident now

	var batchBody strings.Builder
	batchBody.WriteString(`{"requests":[`)
	for i := 0; i < 16; i++ {
		if i > 0 {
			batchBody.WriteByte(',')
		}
		fmt.Fprintf(&batchBody, `{"model":"m","n":%d}`, 5_000_000+int64(i)*100_000)
	}
	batchBody.WriteString(`]}`)
	batch := newHandlerRig(b, h, http.MethodPost, "/v1/partition", []byte(batchBody.String()))
	batch.do(b, 200)
	batch.do(b, 200)

	errRig := newHandlerRig(b, h, http.MethodPost, "/v1/partition", []byte(`{"model":"nosuch","n":5000000}`))
	errRig.do(b, 400)

	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			warm.do(b, 200)
		}
	})
	b.Run("batch16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			batch.do(b, 200)
		}
	})
	b.Run("error", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			errRig.do(b, 400)
		}
	})
}
