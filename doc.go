// Package heteropart is a Go reproduction of "Data Partitioning with a
// Realistic Performance Model of Networks of Heterogeneous Computers"
// (Lastovetsky & Reddy, IPDPS 2004): the functional performance model —
// processor speed as a continuous function of problem size — and the
// geometric set-partitioning algorithms built on it, together with the
// paper's two applications (striped matrix multiplication and LU
// factorization with the Variable Group Block distribution), a modelled
// version of its two testbeds, and a benchmark harness regenerating every
// table and figure of its evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package heteropart
