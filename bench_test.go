// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see the per-experiment index in DESIGN.md), plus ablation
// and micro benchmarks. Each experiment benchmark regenerates its full
// artifact per iteration; run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for recorded paper-vs-measured outcomes.
package heteropart_test

import (
	"math"
	"strconv"
	"testing"

	"heteropart/internal/apps/lu"
	"heteropart/internal/apps/mm"
	"heteropart/internal/apps/stencil"
	"heteropart/internal/core"
	"heteropart/internal/dlt"
	"heteropart/internal/experiments"
	"heteropart/internal/grid"
	"heteropart/internal/kernels"
	"heteropart/internal/machine"
	"heteropart/internal/matrix"
	"heteropart/internal/measure"
	"heteropart/internal/plancache"
	"heteropart/internal/pool"
	"heteropart/internal/speed"
	"heteropart/internal/store"
)

// --- Paper artifacts -----------------------------------------------------

func BenchmarkFig1SpeedCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2PerformanceBands(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ShapeInvariance(b *testing.B) {
	b.Run("model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Table3Model(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("real", func(b *testing.B) {
		cfg := measure.Config{Repeats: 1}
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Table3Real(128, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable4ShapeInvariance(b *testing.B) {
	b.Run("model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Table4Model(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("real", func(b *testing.B) {
		cfg := measure.Config{Repeats: 1}
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Table4Real(128, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig21PartitionerCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig21([]int{270, 540, 810, 1080},
			[]int64{250_000_000, 1_000_000_000, 2_000_000_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig22aMMSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig22a([]int{15000, 19000, 23000, 27000, 31000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig22bLUSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig22b([]int{16000, 24000, 32000}, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

func BenchmarkAblationAlgorithms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAlgorithms(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAngleVsTangent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAngleVsTangent(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFineTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFineTuning(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBuilderBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBuilderBudget(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCommunication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCommunication(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStepModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStepModel(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHeterogeneity(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation2DPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation2DPartitioning(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridPartition2D(b *testing.B) {
	fns, err := experiments.FlopRates(machine.Table2(), machine.MatrixMult)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := grid.Partition2D(6000, 6000, fns, grid.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core micro benchmarks -----------------------------------------------

func benchCluster(b *testing.B, p int) []speed.Function {
	b.Helper()
	fns, err := experiments.SyntheticCluster(p, machine.MatrixMult)
	if err != nil {
		b.Fatal(err)
	}
	return fns
}

func BenchmarkPartitionBasic(b *testing.B) {
	for _, p := range []int{12, 128, 1024} {
		fns := benchCluster(b, p)
		b.Run(benchName("p", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Basic(1_000_000_000, fns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartitionModified(b *testing.B) {
	for _, p := range []int{12, 128, 1024} {
		fns := benchCluster(b, p)
		b.Run(benchName("p", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Modified(1_000_000_000, fns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartitionCombined(b *testing.B) {
	for _, p := range []int{12, 128, 1024} {
		fns := benchCluster(b, p)
		b.Run(benchName("p", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Combined(1_000_000_000, fns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSingleNumber(b *testing.B) {
	speeds := make([]float64, 1024)
	for i := range speeds {
		speeds[i] = float64(1 + i%97)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SingleNumber(1_000_000_000, speeds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeedBuilder(b *testing.B) {
	m, _ := machine.ByName(machine.Table2(), "X5")
	truth, err := m.FlopRate(machine.MatrixMult)
	if err != nil {
		b.Fatal(err)
	}
	oracle := func(x float64) (float64, error) { return truth.Eval(x), nil }
	// The builder is invariant across iterations; constructing it inside the
	// loop would charge its (tiny) setup to every Build measurement.
	builder := speed.Builder{LogDomain: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := builder.Build(oracle, 1e4, truth.Max); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPWLIntersect(b *testing.B) {
	m, _ := machine.ByName(machine.Table2(), "X5")
	truth, err := m.FlopRate(machine.MatrixMult)
	if err != nil {
		b.Fatal(err)
	}
	oracle := func(x float64) (float64, error) { return truth.Eval(x), nil }
	builder := speed.Builder{LogDomain: true}
	fn, _, err := builder.Build(oracle, 1e4, truth.Max)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn.IntersectRay(1e-3 / float64(1+i%1000))
	}
}

// benchPWLCluster samples the synthetic analytic cluster into piecewise
// linear functions, the representation the serving hot path is built
// around (precomputed ratio tables, binary-search IntersectRay).
func benchPWLCluster(b *testing.B, p int) []speed.Function {
	b.Helper()
	fns := benchCluster(b, p)
	out := make([]speed.Function, p)
	for i, f := range fns {
		pts := make([]speed.Point, 0, 16)
		for x := 1e3; x < f.MaxSize(); x *= 4 {
			pts = append(pts, speed.Point{X: x, Y: f.Eval(x)})
		}
		pts = append(pts, speed.Point{X: f.MaxSize(), Y: f.Eval(f.MaxSize())})
		out[i] = speed.MustPiecewiseLinear(speed.EnforceShape(pts))
	}
	return out
}

// BenchmarkPartitionThroughput measures one partition request through each
// serving tier: a cold free-function call (allocates its result and runs the
// full bisection), a warm reusable Partitioner seeded with the previous
// optimum's slope (the zero-allocation hot path — allocs/op must print 0),
// a plan-cache exact hit, and a cache near-miss that is warm-started from a
// neighboring size's cached slope. scripts/bench_partition.sh records these
// rows into BENCH_partition.json, and scripts/ci.sh fails the build if the
// warm path ever allocates again.
func BenchmarkPartitionThroughput(b *testing.B) {
	const n = 1_000_000_000
	for _, p := range []int{12, 64, 256} {
		fns := benchPWLCluster(b, p)
		b.Run(benchName("p", p), func(b *testing.B) {
			seed, err := core.Combined(n, fns)
			if err != nil {
				b.Fatal(err)
			}
			b.Run("cold", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Combined(n, fns); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("warm", func(b *testing.B) {
				pr := core.NewPartitioner()
				dst := make(core.Allocation, p)
				warm := core.WithWarmStart(seed.Slope, 0.05)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pr.PartitionInto(dst, core.AlgoCombined, n, fns, warm); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("cached", func(b *testing.B) {
				c := plancache.New(0)
				if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("nearmiss", func(b *testing.B) {
				c := plancache.New(0)
				if _, err := c.Get(core.AlgoCombined, n, fns); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Every size is new to the cache, so each iteration is a
					// genuine miss warm-started from the n's cached slope.
					if _, err := c.Get(core.AlgoCombined, n+int64(i)+1, fns); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// refreshBenchModels builds the drift pair for BenchmarkModelRefresh: a
// piecewise linear cluster and a twin in which processor 0's two tail
// knots slowed down — allocations below the tail provably cannot move, so
// a delta refresh keeps their plans. The returned sizes put most plans in
// the surviving region and the rest near capacity, where processor 0 is
// pushed into the drifted knots.
func refreshBenchModels(b *testing.B, p int) (fnsA, fnsB []speed.Function, sizes []int64) {
	b.Helper()
	fnsA = benchPWLCluster(b, p)
	pts := append([]speed.Point(nil), fnsA[0].(*speed.PiecewiseLinear).Points()...)
	pts[len(pts)-1].Y *= 0.5
	pts[len(pts)-2].Y *= 0.7
	fnsB = append([]speed.Function(nil), fnsA...)
	fnsB[0] = speed.MustPiecewiseLinear(speed.EnforceShape(pts))

	var capacity float64
	for _, f := range fnsA {
		capacity += f.MaxSize()
	}
	lo, hi := 1e5, capacity/256
	for i := 0; i < 36; i++ {
		sizes = append(sizes, int64(lo*math.Pow(hi/lo, float64(i)/35)))
	}
	for i := 0; i < 12; i++ {
		sizes = append(sizes, int64(capacity*(0.75+0.2*float64(i)/11)))
	}
	return fnsA, fnsB, sizes
}

// BenchmarkModelRefresh compares the two ways a drifted processor reaches a
// serving daemon: a full model re-upload (full model + invalidation WAL
// records, every cached plan dropped) against the per-processor delta path
// (one O(one processor) delta record; plans whose allocation provably
// cannot change survive the refresh). Reported per op: ns, WAL bytes
// appended, and the percentage of cached plans invalidated.
// scripts/bench_refresh.sh records the rows into BENCH_refresh.json.
func BenchmarkModelRefresh(b *testing.B) {
	for _, p := range []int{12, 64, 256} {
		fnsA, fnsB, sizes := refreshBenchModels(b, p)
		b.Run(benchName("p", p), func(b *testing.B) {
			// Probe the drift scenario once, untimed: the delta path's whole
			// point is selectivity, so the benchmark refuses to measure a
			// degenerate split (everything kept, or everything dropped).
			probe := plancache.New(0)
			for _, n := range sizes {
				if _, err := probe.Get(core.AlgoCombined, n, fnsA); err != nil {
					b.Fatal(err)
				}
			}
			kept, dropped := probe.Refresh(fnsA, fnsB)
			if kept < len(sizes)/2 || dropped == 0 {
				b.Fatalf("drift scenario off target: kept=%d dropped=%d of %d plans", kept, dropped, len(sizes))
			}

			newStore := func(b *testing.B) *store.Store {
				st, err := store.Open(store.Options{Dir: b.TempDir()})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { st.Close() })
				if _, _, err := st.PutModel("bench", fnsA); err != nil {
					b.Fatal(err)
				}
				return st
			}
			newCache := func(b *testing.B) *plancache.Cache {
				c := plancache.New(0)
				for _, n := range sizes {
					if _, err := c.Get(core.AlgoCombined, n, fnsA); err != nil {
						b.Fatal(err)
					}
				}
				return c
			}

			b.Run("delta", func(b *testing.B) {
				st, c := newStore(b), newCache(b)
				step := func(i int) {
					old, next := fnsA, fnsB
					if i%2 == 1 {
						old, next = fnsB, fnsA
					}
					if _, _, err := st.RefreshProcessor("bench", 0, next[0]); err != nil {
						b.Fatal(err)
					}
					c.Refresh(old, next)
				}
				// One untimed toggle pair measures WAL bytes per refresh while
				// the log is far from its compaction threshold; the timed loop
				// then runs with compaction live (its periodic cost is part of
				// the serving price) where the WAL counter saw-tooths.
				w0 := st.Stats().WALBytes
				step(0)
				step(1)
				walPerOp := float64(st.Stats().WALBytes-w0) / 2
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step(i)
				}
				b.ReportMetric(walPerOp, "WALbytes/op")
				b.ReportMetric(100*float64(dropped)/float64(len(sizes)), "%invalidated")
			})
			b.Run("full", func(b *testing.B) {
				st, c := newStore(b), newCache(b)
				fps := [2]uint64{speed.Fingerprint(fnsA), speed.Fingerprint(fnsB)}
				step := func(i int) {
					next := fnsB
					if i%2 == 1 {
						next = fnsA
					}
					if _, _, err := st.PutModel("bench", next); err != nil {
						b.Fatal(err)
					}
					c.InvalidateFingerprint(fps[i%2])
				}
				w0 := st.Stats().WALBytes
				step(0)
				step(1)
				walPerOp := float64(st.Stats().WALBytes-w0) / 2
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step(i)
				}
				b.ReportMetric(walPerOp, "WALbytes/op")
				b.ReportMetric(100, "%invalidated")
			})
		})
	}
}

// --- Application and kernel benchmarks -----------------------------------

func BenchmarkMMPartitionTable2(b *testing.B) {
	fns, err := experiments.FlopRates(machine.Table2(), machine.MatrixMult)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mm.PartitionFPM(25000, fns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUVariableGroupBlock(b *testing.B) {
	fns, err := experiments.FlopRates(machine.Table2(), machine.LUFact)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lu.VariableGroupBlock(16000, 64, fns); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSizes are the matrix sizes of the serial-vs-parallel kernel
// comparison recorded in EXPERIMENTS.md; scripts/bench_kernels.sh runs the
// Kernel benchmarks and emits the BENCH_kernels.json baseline.
var benchSizes = []int{128, 512, 1024}

// benchWorkerCounts: 0 means the full GOMAXPROCS pool.
var benchWorkerCounts = []int{1, 2, 4, 0}

func workersName(w int) string {
	if w == 0 {
		return "workers=all"
	}
	return "workers=" + strconv.Itoa(w)
}

func BenchmarkKernelMatMulNaive(b *testing.B) {
	benchMatMul(b, func(c, x, y *matrix.Dense) error { return kernels.MatMulNaive(c, x, y) })
}

func BenchmarkKernelMatMulBlocked(b *testing.B) {
	benchMatMul(b, func(c, x, y *matrix.Dense) error { return kernels.MatMulBlocked(c, x, y, 64) })
}

func BenchmarkKernelMatMulParallel(b *testing.B) {
	for _, w := range benchWorkerCounts {
		pl := pool.Sized(w)
		b.Run(workersName(w), func(b *testing.B) {
			benchMatMul(b, func(c, x, y *matrix.Dense) error {
				return kernels.MatMulParallel(pl, c, x, y, 64)
			})
		})
	}
}

func BenchmarkKernelMatMulABT(b *testing.B) {
	benchMatMul(b, func(c, x, y *matrix.Dense) error { return kernels.MatMulABT(c, x, y) })
}

func BenchmarkKernelMatMulABTParallel(b *testing.B) {
	for _, w := range benchWorkerCounts {
		pl := pool.Sized(w)
		b.Run(workersName(w), func(b *testing.B) {
			benchMatMul(b, func(c, x, y *matrix.Dense) error {
				return kernels.MatMulABTParallel(pl, c, x, y)
			})
		})
	}
}

func benchMatMul(b *testing.B, mul func(c, x, y *matrix.Dense) error) {
	b.Helper()
	for _, n := range benchSizes {
		b.Run(benchName("n", n), func(b *testing.B) {
			x := matrix.MustNew(n, n)
			y := matrix.MustNew(n, n)
			c := matrix.MustNew(n, n)
			x.FillRandom(1)
			y.FillRandom(2)
			b.SetBytes(int64(3 * n * n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mul(c, x, y); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(kernels.FlopsMatMul(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func BenchmarkKernelLU(b *testing.B) {
	benchLU(b, func(work *matrix.Dense) error {
		_, err := kernels.LUFactorize(work)
		return err
	})
}

func BenchmarkKernelLUParallel(b *testing.B) {
	for _, w := range benchWorkerCounts {
		pl := pool.Sized(w)
		b.Run(workersName(w), func(b *testing.B) {
			benchLU(b, func(work *matrix.Dense) error {
				_, err := kernels.LUFactorizeParallel(pl, work)
				return err
			})
		})
	}
}

func benchLU(b *testing.B, factor func(work *matrix.Dense) error) {
	b.Helper()
	for _, n := range benchSizes {
		b.Run(benchName("n", n), func(b *testing.B) {
			base := matrix.MustNew(n, n)
			base.FillRandom(3)
			for i := 0; i < n; i++ {
				base.Set(i, i, base.At(i, i)+float64(n))
			}
			work := matrix.MustGetDense(n, n)
			defer matrix.PutDense(work)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := work.CopyFrom(base); err != nil {
					b.Fatal(err)
				}
				if err := factor(work); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(kernels.FlopsLU(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + strconv.Itoa(v)
}

func BenchmarkPartitionExact(b *testing.B) {
	for _, p := range []int{12, 128} {
		fns := benchCluster(b, p)
		b.Run(benchName("p", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Exact(1_000_000_000, fns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDLTDistribute(b *testing.B) {
	workers := make([]dlt.Worker, 32)
	for i := range workers {
		workers[i] = dlt.Worker{
			Rate: []dlt.RatePiece{
				{Units: 1e4, SecPerUnit: 1e-6 * float64(1+i%7)},
				{Units: 1e18, SecPerUnit: 2e-5 * float64(1+i%7)},
			},
			Latency:        1e-4,
			SecPerUnitComm: 1e-8,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dlt.Distribute(1e6, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStencilExecute(b *testing.B) {
	fns := []speed.Function{
		speed.MustConstant(3e8, 1e10),
		speed.MustConstant(1e8, 1e10),
		speed.MustConstant(2e8, 1e10),
	}
	plan, err := stencil.Partition(200_000, fns)
	if err != nil {
		b.Fatal(err)
	}
	src := make([]float64, 200_000)
	for i := range src {
		src[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stencil.Execute(plan, src, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGroupBlock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGroupBlock(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOverlap(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFaultRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFaultRecovery(); err != nil {
			b.Fatal(err)
		}
	}
}
