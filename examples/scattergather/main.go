// scattergather: the event-driven view of the striped application. A
// master scatters inputs over a serialized 100 Mbit link to the modelled
// Table 2 machines, each computes as soon as its data lands, and results
// gather back. The timeline chart shows the staircase of compute starts —
// the overlap the closed-form "compute + comm" estimate cannot see.
//
// Run with: go run ./examples/scattergather [-n 15000]
package main

import (
	"flag"
	"fmt"
	"log"

	"heteropart/internal/apps/mm"
	"heteropart/internal/des"
	"heteropart/internal/machine"
	"heteropart/internal/report"
	"heteropart/internal/speed"
)

func main() {
	n := flag.Int("n", 15000, "matrix size")
	flag.Parse()

	ms := machine.Table2()
	fns := make([]speed.Function, len(ms))
	for i, m := range ms {
		f, err := m.FlopRate(machine.MatrixMult)
		if err != nil {
			log.Fatal(err)
		}
		fns[i] = f
	}
	plan, err := mm.PartitionFPM(*n, fns)
	if err != nil {
		log.Fatal(err)
	}
	p := len(fns)
	sg := &des.ScatterGather{
		SendBytes:   make([]float64, p),
		ReturnBytes: make([]float64, p),
		Work:        make([]float64, p),
		Size:        make([]float64, p),
		Speeds:      fns,
		LatencySec:  100e-6,
		BytesPerSec: 100e6 / 8,
	}
	nf := float64(*n)
	for i, r := range plan.Rows {
		rf := float64(r)
		sg.SendBytes[i] = 8 * (rf*nf + nf*nf) // A stripe + full B
		sg.ReturnBytes[i] = 8 * rf * nf       // C stripe
		sg.Work[i] = 2 * rf * nf * nf
		sg.Size[i] = 3 * rf * nf
	}
	res, err := sg.Run()
	if err != nil {
		log.Fatal(err)
	}
	noOv, err := sg.NoOverlapMakespan()
	if err != nil {
		log.Fatal(err)
	}
	compute, err := mm.SimTime(plan, fns)
	if err != nil {
		log.Fatal(err)
	}

	t := report.New(fmt.Sprintf("Striped C=A×Bᵀ, n=%d, 12 machines, serialized 100 Mbit", *n),
		"model", "makespan (s)")
	t.AddRow("computation only (the paper's model)", compute)
	t.AddRow("compute + communication, no overlap", noOv)
	t.AddRow("event-driven with overlap", res.Makespan)
	t.AddNote("link busy %.1f%% of the run", 100*res.LinkUtilization)
	fmt.Print(t)
	fmt.Println()

	c := report.NewChart("Compute start/end per machine (staircase = serialized scatter)",
		"machine index", "time (s)")
	var xs, starts, ends []float64
	for i, tl := range res.Timelines {
		if len(tl.Spans) == 0 {
			continue
		}
		xs = append(xs, float64(i))
		starts = append(starts, tl.Spans[0].Start)
		ends = append(ends, tl.Spans[0].End)
	}
	if err := c.AddSeries("compute start", xs, starts); err != nil {
		log.Fatal(err)
	}
	if err := c.AddSeries("compute end", xs, ends); err != nil {
		log.Fatal(err)
	}
	fmt.Print(c)
}
