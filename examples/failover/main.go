// failover: the fault-injection subsystem end to end. The same seeded
// fault plan — "crash the most-loaded Table 2 machine halfway through" —
// is played through all three layers of the repo:
//
//  1. the closed-form model (sim.FaultyMakespan), which prices the
//     FPM-aware recovery against the naive rerun-from-scratch baseline;
//  2. the discrete-event simulator (des.ScatterGather), where the master's
//     timeout detects the death and resends the stranded stripe to the
//     best survivor over the shared serialized link;
//  3. a real run (mm.ExecuteSupervised), where goroutine workers pass
//     through the injector's gate between rows, the crashed worker's
//     unfinished rows are repartitioned over the survivors with
//     core.Repartition, and the recovered product is bit-identical to
//     the fault-free one.
//
// Run with: go run ./examples/failover [-n 15000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"heteropart/internal/apps/mm"
	"heteropart/internal/des"
	"heteropart/internal/faults"
	"heteropart/internal/machine"
	"heteropart/internal/matrix"
	"heteropart/internal/report"
	"heteropart/internal/sim"
	"heteropart/internal/speed"
)

func main() {
	n := flag.Int("n", 15000, "matrix size for the model and DES acts")
	flag.Parse()

	ms := machine.Table2()
	fns := make([]speed.Function, len(ms))
	for i, m := range ms {
		f, err := m.FlopRate(machine.MatrixMult)
		if err != nil {
			log.Fatal(err)
		}
		fns[i] = f
	}
	plan, err := mm.PartitionFPM(*n, fns)
	if err != nil {
		log.Fatal(err)
	}

	// The victim: the machine carrying the most rows.
	victim := 0
	for i, r := range plan.Rows {
		if r > plan.Rows[victim] {
			victim = i
		}
	}

	// --- Act 1: closed-form ---------------------------------------------
	nf := float64(*n)
	tasks := make([]sim.Task, len(fns))
	for i, r := range plan.Rows {
		rf := float64(r)
		tasks[i] = sim.Task{Work: 2 * rf * nf * nf, Size: 3 * rf * nf}
	}
	base, _, err := sim.Makespan(tasks, fns)
	if err != nil {
		log.Fatal(err)
	}
	pln, err := faults.NewPlan(faults.Fault{Kind: faults.Crash, Proc: victim, At: base / 2})
	if err != nil {
		log.Fatal(err)
	}
	opt := sim.FaultyOptions{Plan: pln}
	rec, err := sim.FaultyMakespan(tasks, fns, opt)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := sim.NaiveRerunMakespan(tasks, fns, opt)
	if err != nil {
		log.Fatal(err)
	}
	t := report.New(
		fmt.Sprintf("Closed form: MM n=%d, %s crashes at T/2", *n, ms[victim].Name),
		"policy", "makespan (s)", "vs fault-free")
	t.AddRow("fault-free", base, 1.0)
	t.AddRow("FPM repartitioning (waterfilled survivors)", rec.Makespan, rec.Makespan/base)
	t.AddRow("naive rerun from scratch", naive.Makespan, naive.Makespan/base)
	t.AddNote("failure detected at %s s (timeout = predicted finish × 1.5)",
		report.FormatFloat(rec.DetectedAt))
	fmt.Print(t)
	fmt.Println()

	// --- Act 2: discrete-event simulation -------------------------------
	p := len(fns)
	sg := &des.ScatterGather{
		SendBytes:   make([]float64, p),
		ReturnBytes: make([]float64, p),
		Work:        make([]float64, p),
		Size:        make([]float64, p),
		Speeds:      fns,
		LatencySec:  100e-6,
		BytesPerSec: 100e6 / 8,
		Faults:      pln,
	}
	for i, r := range plan.Rows {
		rf := float64(r)
		sg.SendBytes[i] = 8 * (rf*nf + nf*nf) // A stripe + full B
		sg.ReturnBytes[i] = 8 * rf * nf       // C stripe
		sg.Work[i] = 2 * rf * nf * nf
		sg.Size[i] = 3 * rf * nf
	}
	res, err := sg.Run()
	if err != nil {
		log.Fatal(err)
	}
	dt := report.New(
		fmt.Sprintf("DES: same crash over a serialized 100 Mbit medium (makespan %s s)",
			report.FormatFloat(res.Makespan)),
		"failed", "detected (s)", "recovered by", "result landed (s)")
	for _, r := range res.Recoveries {
		dt.AddRow(ms[r.Failed].Name, r.DetectedAt, ms[r.By].Name, r.FinishedAt)
	}
	dt.AddNote("the survivor's Gantt row gains a resend and a \"recover\" span:")
	fmt.Print(dt)
	for _, r := range res.Recoveries {
		for _, s := range res.Timelines[r.By].Spans {
			fmt.Printf("  %-28s %s – %s s\n", s.Label,
				report.FormatFloat(s.Start), report.FormatFloat(s.End))
		}
	}
	fmt.Println()

	// --- Act 3: real goroutine workers ----------------------------------
	const realN = 160
	rplan, err := mm.PartitionFPM(realN, fns)
	if err != nil {
		log.Fatal(err)
	}
	rvictim := 0
	for i, r := range rplan.Rows {
		if r > rplan.Rows[rvictim] {
			rvictim = i
		}
	}
	a := matrix.MustNew(realN, realN)
	b := matrix.MustNew(realN, realN)
	a.FillRandom(11)
	b.FillRandom(12)
	want, _, err := mm.Execute(rplan, a, b)
	if err != nil {
		log.Fatal(err)
	}
	rpln, err := faults.NewPlan(faults.Fault{Kind: faults.Crash, Proc: rvictim, At: 5e-5})
	if err != nil {
		log.Fatal(err)
	}
	inj, err := faults.NewInjector(rpln, p, 1)
	if err != nil {
		log.Fatal(err)
	}
	c, srep, err := mm.ExecuteSupervised(context.Background(), rplan, a, b, fns, inj,
		faults.Config{MaxRetries: 1})
	if err != nil {
		log.Fatal(err)
	}
	identical := c.Rows == want.Rows && c.Cols == want.Cols
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			identical = false
			break
		}
	}
	fmt.Printf("Real run: n=%d, %s crashed 50 µs in; %d supervision rounds,\n",
		realN, ms[rvictim].Name, srep.Rounds)
	fmt.Printf("  %d stranded rows repartitioned over the survivors (%v),\n",
		srep.MovedRows, srep.Recovered)
	fmt.Printf("  recovered product bit-identical to the fault-free one: %v\n", identical)
}
