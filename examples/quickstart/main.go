// Quickstart: partition 100 million elements over five heterogeneous
// processors whose speeds depend on problem size, and compare the
// functional performance model against the classical single-number model
// and the even distribution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"heteropart/internal/core"
	"heteropart/internal/report"
	"heteropart/internal/speed"
)

func main() {
	// Five processors. Three are healthy across the whole range; one is
	// fast but starts paging at 20M elements; one is slow but steady.
	cluster := []speed.Function{
		&speed.Analytic{Peak: 4e8, HalfRise: 1e4, Max: 4e8},
		&speed.Analytic{Peak: 2.5e8, HalfRise: 2e4, Max: 4e8},
		&speed.Analytic{Peak: 3e8, HalfRise: 1e4, CacheEdge: 1e6, CacheDecay: 0.8,
			PagingPoint: 2e7, PagingWidth: 5e6, PagingFloor: 0.05, Max: 4e8},
		speed.MustConstant(6e7, 4e8),
		&speed.Analytic{Peak: 1.2e8, HalfRise: 5e3, Max: 4e8},
	}
	names := []string{"alpha", "beta", "gamma(pages@20M)", "delta", "epsilon"}
	const n = 100_000_000

	// Functional model: the combined algorithm of the paper.
	res, err := core.Combined(n, cluster)
	if err != nil {
		log.Fatal(err)
	}

	// Single-number baseline: speeds measured once at n/p elements.
	single := make([]float64, len(cluster))
	for i, f := range cluster {
		single[i] = f.Eval(n / float64(len(cluster)))
	}
	snAlloc, err := core.SingleNumber(n, single)
	if err != nil {
		log.Fatal(err)
	}
	evenAlloc, err := core.Even(n, len(cluster))
	if err != nil {
		log.Fatal(err)
	}

	t := report.New("Functional-model distribution of 100M elements",
		"processor", "elements", "share %", "time (s)")
	for i, x := range res.Alloc {
		tm := float64(x) / cluster[i].Eval(float64(x))
		t.AddRow(names[i], float64(x), 100*float64(x)/n, tm)
	}
	fmt.Print(t)
	fmt.Println()

	c := report.New("Makespan comparison", "model", "makespan (s)", "vs functional")
	mFPM := core.Makespan(res.Alloc, cluster)
	mSN := core.Makespan(snAlloc, cluster)
	mEven := core.Makespan(evenAlloc, cluster)
	c.AddRow("functional (combined)", mFPM, 1.0)
	c.AddRow("single-number @ n/p", mSN, mSN/mFPM)
	c.AddRow("even", mEven, mEven/mFPM)
	c.AddNote("partitioning took %d bisection steps and %d ray–graph intersections",
		res.Stats.Steps, res.Stats.Intersections)
	fmt.Print(c)
}
