// adaptive: maintaining the functional model in production — the workflow
// the paper's §4 names as follow-up work. A cluster runs a sequence of
// workloads; after each run the observed speeds are folded into the
// piecewise linear models (speed.Observe), and the allocation is adjusted
// with minimal data migration (core.Repartition). Midway, one machine
// "degrades" (a daemon steals 60 % of it); the model notices within a few
// observations and the repartitioner shifts load away while moving only a
// fraction of the data a full redistribution would.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"heteropart/internal/core"
	"heteropart/internal/report"
	"heteropart/internal/speed"
)

const n = 60_000_000

func main() {
	// Ground truth: three machines, one of which will degrade at round 6.
	truth := []*speed.Analytic{
		{Peak: 3e8, HalfRise: 1e4, Max: 1e9},
		{Peak: 2e8, HalfRise: 1e4, PagingPoint: 3e7, PagingWidth: 6e6, PagingFloor: 0.1, Max: 1e9},
		{Peak: 1e8, HalfRise: 1e4, Max: 1e9},
	}
	degrade := func(round int, i int, s float64) float64 {
		if round >= 6 && i == 0 {
			return s * 0.4 // machine 0 loses 60 % of its speed
		}
		return s
	}

	// Initial models: two knots each, deliberately crude.
	models := make([]*speed.PiecewiseLinear, len(truth))
	fns := make([]speed.Function, len(truth))
	for i, tf := range truth {
		models[i] = speed.MustPiecewiseLinear([]speed.Point{
			{X: 1e4, Y: tf.Eval(1e4)}, {X: 1e9, Y: tf.Eval(1e9)},
		})
		fns[i] = models[i]
	}
	alloc, err := core.Even(n, len(truth))
	if err != nil {
		log.Fatal(err)
	}

	t := report.New("Adaptive rounds: observe → update model → repartition",
		"round", "alloc m0", "alloc m1", "alloc m2", "true makespan (s)")
	for round := 1; round <= 12; round++ {
		// "Run" the workload: observe the true per-machine speeds at the
		// sizes actually executed, with the round-6 degradation.
		worst := 0.0
		for i := range truth {
			x := float64(alloc[i])
			if x == 0 {
				continue
			}
			s := degrade(round, i, truth[i].Eval(x))
			if tm := x / s; tm > worst {
				worst = tm
			}
			m, err := speed.Observe(models[i], x, s, 0.6, x/50)
			if err != nil {
				log.Fatal(err)
			}
			models[i] = m
			fns[i] = m
		}
		t.AddRow(round, float64(alloc[0]), float64(alloc[1]), float64(alloc[2]), worst)
		// Repartition with minimal migration under the updated models.
		next, moved, err := core.Repartition(alloc, fns, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		alloc = next
		if moved > 0 {
			t.AddNote("round %d: migrated %d elements (%.1f%% of the data)",
				round, moved, 100*float64(moved)/float64(n))
		}
	}
	fmt.Print(t)
}
