// lufact: the Variable Group Block distribution for parallel LU
// factorization (Figure 17 of the paper).
//
// The first part reproduces the paper's own illustration: n = 576, b = 32,
// p = 3 processors with relative speeds 3:2:1 give 18 column blocks with
// the first group distributed {0,0,0,1,1,2} and the last group reversed to
// keep the fastest processor last, exactly as in Figure 17(b). (The
// paper's intermediate group sizes {6,5,7} arise from its size-dependent
// speeds; with the constant 3:2:1 speeds of the illustration the groups
// come out equal.)
//
// The second part runs the distribution on the modelled 12-machine
// network of Table 2 at a paging-regime size and compares the functional
// model against single-number baselines, as in Figure 22(b).
//
// Run with: go run ./examples/lufact
package main

import (
	"fmt"
	"log"
	"strings"

	"heteropart/internal/apps/lu"
	"heteropart/internal/machine"
	"heteropart/internal/report"
	"heteropart/internal/speed"
)

func main() {
	paperIllustration()
	fmt.Println()
	table2Comparison()
}

func paperIllustration() {
	fns := []speed.Function{
		speed.MustConstant(300, 1e9),
		speed.MustConstant(200, 1e9),
		speed.MustConstant(100, 1e9),
	}
	d, err := lu.VariableGroupBlock(576, 32, fns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Paper illustration (n=576, b=32, speeds 3:2:1):")
	fmt.Printf("  groups: %v\n", d.GroupSizes)
	at := 0
	for gi, g := range d.GroupSizes {
		owners := make([]string, g)
		for j := 0; j < g; j++ {
			owners[j] = fmt.Sprint(d.Owners[at+j])
		}
		fmt.Printf("  G%d: {%s}\n", gi+1, strings.Join(owners, ","))
		at += g
	}
}

func table2Comparison() {
	ms := machine.Table2()
	fns := make([]speed.Function, len(ms))
	for i, m := range ms {
		f, err := m.FlopRate(machine.LUFact)
		if err != nil {
			log.Fatal(err)
		}
		fns[i] = f
	}
	const n, b = 24000, 64
	fpm, err := lu.VariableGroupBlock(n, b, fns)
	if err != nil {
		log.Fatal(err)
	}
	tFPM, err := lu.SimTime(fpm, fns)
	if err != nil {
		log.Fatal(err)
	}
	t := report.New(
		fmt.Sprintf("LU factorization, n=%d, b=%d on the Table 2 network (modelled)", n, b),
		"distribution", "groups", "time (s)", "vs functional")
	t.AddRow("Variable Group Block (functional model)", len(fpm.GroupSizes), tFPM, 1.0)
	for _, refN := range []int{2000, 5000} {
		snd, err := lu.SingleNumberDistribution(n, b, refN, fns)
		if err != nil {
			log.Fatal(err)
		}
		tSN, err := lu.SimTime(snd, fns)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("single-number @ %d×%d", refN, refN),
			len(snd.GroupSizes), tSN, tSN/tFPM)
	}
	fmt.Print(t)

	// Per-step timeline: LU's work shrinks as the factorization advances,
	// which is exactly why the Variable Group Block distribution evaluates
	// the speed functions at the per-step problem size.
	steps, err := lu.SimTimeDetailed(fpm, fns)
	if err != nil {
		log.Fatal(err)
	}
	c := report.NewChart("Per-step time of the factorization (functional model)",
		"block column k", "step time (s)")
	xs := make([]float64, len(steps))
	ys := make([]float64, len(steps))
	for i, s := range steps {
		xs[i] = float64(i)
		ys[i] = s.Panel + s.Update
	}
	if err := c.AddSeries("panel+update", xs, ys); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(c)
}
