// textsearch: data-parallel pattern search — one of the workload classes
// the paper's introduction motivates ("search for patterns in text, audio,
// graphical files"). A large synthetic corpus is split into chunks whose
// sizes are proportional to the (size-dependent) speeds of the workers,
// the workers count pattern occurrences in their chunks for real, and the
// result is verified against a serial scan.
//
// One worker has a small memory budget: past it, its modelled speed
// collapses (paging). The functional model routes the bulk of the corpus
// away from it; a single-number model measured on a small sample cannot.
//
// Run with: go run ./examples/textsearch [-mb 8]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"sync"

	"heteropart/internal/core"
	"heteropart/internal/report"
	"heteropart/internal/speed"
)

const pattern = "needle"

func main() {
	mb := flag.Int("mb", 8, "corpus size in MiB")
	flag.Parse()
	corpus := makeCorpus(*mb << 20)
	serial := bytes.Count(corpus, []byte(pattern))

	// Modelled scan speeds in bytes/second: two healthy workers and one
	// that pages beyond 1 MiB of chunk.
	cluster := []speed.Function{
		&speed.Analytic{Peak: 4e8, HalfRise: 1 << 12, Max: 1 << 34},
		&speed.Analytic{Peak: 2e8, HalfRise: 1 << 12, Max: 1 << 34},
		&speed.Analytic{Peak: 3e8, HalfRise: 1 << 12,
			PagingPoint: 1 << 20, PagingWidth: 1 << 19, PagingFloor: 0.03, Max: 1 << 34},
	}
	names := []string{"scan0", "scan1", "scan2(pages@1MiB)"}

	res, err := core.Combined(int64(len(corpus)), cluster)
	if err != nil {
		log.Fatal(err)
	}
	// Single-number baseline measured on a 64 KiB sample.
	speeds := make([]float64, len(cluster))
	for i, f := range cluster {
		speeds[i] = f.Eval(64 << 10)
	}
	sn, err := core.SingleNumber(int64(len(corpus)), speeds)
	if err != nil {
		log.Fatal(err)
	}

	for _, run := range []struct {
		label string
		alloc core.Allocation
	}{
		{"functional model", res.Alloc},
		{"single-number @ 64KiB sample", sn},
	} {
		total, counts := parallelCount(corpus, run.alloc)
		if total != serial {
			log.Fatalf("%s: parallel count %d != serial %d", run.label, total, serial)
		}
		t := report.New(fmt.Sprintf("%s — corpus split (counts verified: %d matches)", run.label, serial),
			"worker", "bytes", "share %", "matches", "modelled time (s)")
		for i, x := range run.alloc {
			tm := 0.0
			if x > 0 {
				tm = float64(x) / cluster[i].Eval(float64(x))
			}
			t.AddRow(names[i], float64(x), 100*float64(x)/float64(len(corpus)), counts[i], tm)
		}
		t.AddNote("modelled makespan: %s s", report.FormatFloat(core.Makespan(run.alloc, cluster)))
		fmt.Print(t)
		fmt.Println()
	}
}

// makeCorpus builds a deterministic pseudo-text with embedded needles.
func makeCorpus(size int) []byte {
	rng := rand.New(rand.NewPCG(42, 1))
	buf := make([]byte, 0, size+16)
	words := []string{"lorem", "ipsum", "dolor", "sit", "amet", pattern, "haystack"}
	for len(buf) < size {
		buf = append(buf, words[rng.IntN(len(words))]...)
		buf = append(buf, ' ')
	}
	return buf[:size]
}

// parallelCount splits the corpus per the allocation (extending each chunk
// by the pattern length to catch matches straddling boundaries, counting
// straddlers exactly once) and counts in parallel.
func parallelCount(corpus []byte, alloc core.Allocation) (int, []int) {
	counts := make([]int, len(alloc))
	var wg sync.WaitGroup
	at := 0
	for i, x := range alloc {
		lo, hi := at, at+int(x)
		at = hi
		if x == 0 {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			end := hi + len(pattern) - 1
			if end > len(corpus) {
				end = len(corpus)
			}
			// Matches starting in [lo, hi).
			chunk := corpus[lo:end]
			n := 0
			for idx := bytes.Index(chunk, []byte(pattern)); idx >= 0 && lo+idx < hi; {
				n++
				next := bytes.Index(chunk[idx+1:], []byte(pattern))
				if next < 0 {
					break
				}
				idx += 1 + next
			}
			counts[i] = n
		}(i, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, counts
}
