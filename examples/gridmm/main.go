// gridmm: the two-dimensional extension the paper sketches in §3.1 —
// partition an N×N element grid into one rectangle per processor with
// areas proportional to the size-dependent speeds, and compare the
// communication proxy (total semi-perimeter) against the one-dimensional
// striped layout of the paper's main application.
//
// Run with: go run ./examples/gridmm [-n 6000]
package main

import (
	"flag"
	"fmt"
	"log"

	"heteropart/internal/grid"
	"heteropart/internal/machine"
	"heteropart/internal/report"
	"heteropart/internal/speed"
)

func main() {
	n := flag.Int("n", 6000, "grid dimension (N×N elements)")
	flag.Parse()

	ms := machine.Table2()
	fns := make([]speed.Function, len(ms))
	for i, m := range ms {
		f, err := m.FlopRate(machine.MatrixMult)
		if err != nil {
			log.Fatal(err)
		}
		fns[i] = f
	}

	stripes, err := grid.Partition2D(*n, *n, fns, grid.Options{Columns: 1})
	if err != nil {
		log.Fatal(err)
	}
	rects, err := grid.Partition2D(*n, *n, fns, grid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := grid.Validate(*n, *n, rects.Rects); err != nil {
		log.Fatalf("tiling invalid: %v", err)
	}

	t := report.New(
		fmt.Sprintf("2D rectangles on the Table 2 network (%d×%d grid, %d columns)", *n, *n, rects.Columns),
		"machine", "rectangle", "cells", "share %")
	total := float64(*n) * float64(*n)
	for i, r := range rects.Rects {
		t.AddRow(ms[i].Name, r.String(), float64(r.Area()), 100*float64(r.Area())/total)
	}
	fmt.Print(t)
	fmt.Println()

	c := report.New("Layout comparison", "layout", "Σ(w+h)", "makespan (s)")
	c.AddRow("1D stripes (paper's Fig. 16 layout)",
		float64(grid.TotalSemiPerimeter(stripes.Rects)), stripes.Makespan)
	c.AddRow("2D rectangles (§3.1 extension)",
		float64(grid.TotalSemiPerimeter(rects.Rects)), rects.Makespan)
	c.AddNote("computation balance is equal; the 2D layout cuts the boundary data the processors would exchange")
	fmt.Print(c)
}
