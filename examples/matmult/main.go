// matmult: a real end-to-end run of the paper's pipeline on this host.
//
// Heterogeneity is emulated with handicapped workers: each worker computes
// its stripe of C = A×Bᵀ for real, but repeats every row a fixed number of
// times (a slower CPU) and, past a per-worker "memory budget" of rows,
// with an extra penalty factor (paging). The speed of each worker is
// therefore a genuine, measured, size-dependent function.
//
// The pipeline is exactly §3 of the paper:
//
//  1. benchmark each worker at a few stripe sizes and build its piecewise
//     linear speed function with the §3.1 trisection procedure;
//  2. partition the matrix rows with the functional-model algorithm;
//  3. run the real multiplication and compare the worker finish times
//     against an even distribution and a single-number distribution.
//
// Run with: go run ./examples/matmult [-n 768]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"heteropart/internal/core"
	"heteropart/internal/kernels"
	"heteropart/internal/matrix"
	"heteropart/internal/report"
	"heteropart/internal/speed"
)

// worker is a handicapped processor: repeat each row `slow` times, and
// `slow*pagePenalty` times past `memRows` rows.
type worker struct {
	name        string
	slow        int
	memRows     int
	pagePenalty int
}

// multiply computes dst = src×bᵀ with the worker's handicap.
func (w worker) multiply(dst, src, b *matrix.Dense) error {
	for i := 0; i < src.Rows; i++ {
		reps := w.slow
		if i >= w.memRows {
			reps *= w.pagePenalty
		}
		row, err := src.RowStripe(i, i+1)
		if err != nil {
			return err
		}
		out, err := dst.RowStripe(i, i+1)
		if err != nil {
			return err
		}
		for r := 0; r < reps; r++ {
			if err := kernels.MatMulABT(out, row, b); err != nil {
				return err
			}
		}
	}
	return nil
}

func main() {
	n := flag.Int("n", 512, "matrix size")
	concurrent := flag.Bool("goroutines", false, "run workers concurrently (needs one core per worker to be meaningful)")
	flag.Parse()

	workers := []worker{
		{name: "w0 (fast)", slow: 1, memRows: *n, pagePenalty: 1},
		{name: "w1 (2x slow)", slow: 2, memRows: *n, pagePenalty: 1},
		{name: "w2 (pages)", slow: 1, memRows: *n / 6, pagePenalty: 4},
	}

	a := matrix.MustNew(*n, *n)
	b := matrix.MustNew(*n, *n)
	a.FillRandom(1)
	b.FillRandom(2)

	// Step 1: build a measured speed function (rows/second as a function
	// of stripe rows) per worker with the §3.1 procedure.
	fmt.Println("building measured speed functions (§3.1 trisection)…")
	fns := make([]speed.Function, len(workers))
	for i, w := range workers {
		oracle := func(rows float64) (float64, error) {
			r := int(rows)
			if r < 1 {
				r = 1
			}
			src, err := a.RowStripe(0, r)
			if err != nil {
				return 0, err
			}
			dst := matrix.MustNew(r, *n)
			start := time.Now()
			if err := w.multiply(dst, src, b); err != nil {
				return 0, err
			}
			return float64(r) / time.Since(start).Seconds(), nil
		}
		builder := speed.Builder{Eps: 0.1, MaxMeasurements: 24, MinInterval: float64(*n) / 48}
		fn, stats, err := builder.Build(oracle, 4, float64(*n))
		if err != nil && fn == nil {
			log.Fatalf("building %s: %v", w.name, err)
		}
		fmt.Printf("  %-14s %2d measurements, %2d knots\n", w.name, stats.Measurements, fn.NumPoints())
		fns[i] = fn
	}

	// Step 2: the three distributions.
	fpm, err := core.Combined(int64(*n), fns)
	if err != nil {
		log.Fatal(err)
	}
	singleSpeeds := make([]float64, len(fns))
	for i, f := range fns {
		singleSpeeds[i] = f.Eval(float64(*n) / float64(len(fns)))
	}
	sn, err := core.SingleNumber(int64(*n), singleSpeeds)
	if err != nil {
		log.Fatal(err)
	}
	even, err := core.Even(int64(*n), len(fns))
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: run each distribution for real.
	want := matrix.MustNew(*n, *n)
	if err := kernels.MatMulABT(want, a, b); err != nil {
		log.Fatal(err)
	}
	for _, run := range []struct {
		label string
		rows  core.Allocation
	}{
		{"functional model", fpm.Alloc},
		{"single-number @ n/p", sn},
		{"even", even},
	} {
		c, times, err := execute(run.rows, workers, a, b, *concurrent)
		if err != nil {
			log.Fatal(err)
		}
		if d := matrix.MaxAbsDiff(c, want); d > 1e-9 {
			log.Fatalf("%s: result deviates by %v", run.label, d)
		}
		t := report.New(fmt.Sprintf("%s — measured worker times (result verified)", run.label),
			"worker", "rows", "time (s)")
		worst := 0.0
		for i, w := range workers {
			t.AddRow(w.name, float64(run.rows[i]), times[i])
			if times[i] > worst {
				worst = times[i]
			}
		}
		t.AddNote("parallel time (slowest worker): %s s", report.FormatFloat(worst))
		fmt.Println()
		fmt.Print(t)
	}
}

// execute runs the distribution. Each worker's stripe is computed and
// timed in isolation (one worker at a time): with every "machine" of the
// emulated network owning its CPU exclusively, the parallel execution
// time is the maximum of the dedicated per-worker times. Running the
// stripes concurrently on this host would only measure scheduler
// contention, not the distribution quality. Set -goroutines to run them
// concurrently anyway when enough cores are available.
func execute(rows core.Allocation, workers []worker, a, b *matrix.Dense, concurrent bool) (*matrix.Dense, []float64, error) {
	stripes, err := matrix.Stripes(rows, a.Rows)
	if err != nil {
		return nil, nil, err
	}
	c := matrix.MustNew(a.Rows, a.Cols)
	times := make([]float64, len(workers))
	errs := make([]error, len(workers))
	runOne := func(i, lo, hi int) {
		src, err := a.RowStripe(lo, hi)
		if err != nil {
			errs[i] = err
			return
		}
		dst, err := c.RowStripe(lo, hi)
		if err != nil {
			errs[i] = err
			return
		}
		start := time.Now()
		errs[i] = workers[i].multiply(dst, src, b)
		times[i] = time.Since(start).Seconds()
	}
	if concurrent {
		var wg sync.WaitGroup
		for i, s := range stripes {
			if s[0] == s[1] {
				continue
			}
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				runOne(i, lo, hi)
			}(i, s[0], s[1])
		}
		wg.Wait()
	} else {
		for i, s := range stripes {
			if s[0] != s[1] {
				runOne(i, s[0], s[1])
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return c, times, nil
}
