// noisy-measurement: the robust measurement pipeline end to end. A
// three-machine cluster's speed functions are rebuilt by the §3.1
// trisection procedure from a benchmark oracle corrupted by a seeded,
// replayable measurement-fault plan — lognormal noise (σ = 0.1), 5 % ×4
// outliers, and one call that hangs. Two pipelines run side by side:
//
//   - naive: every trisection point is a single raw oracle call, taken at
//     face value — the hang blocks for its full duration, the outliers
//     land in the model, and the §3.1 recursion chases noise;
//   - robust: every point is measured under a deadline with retries,
//     repeated adaptively until its MAD-based confidence width is under
//     1 %, outliers rejected, per-knot quality recorded (internal/measure).
//
// Both models then drive the paper's combined partitioner, and the two
// partitions are printed side by side against the ground-truth one.
//
// Run with: go run ./examples/noisy-measurement
package main

import (
	"fmt"
	"log"
	"time"

	"heteropart/internal/core"
	"heteropart/internal/faults"
	"heteropart/internal/measure"
	"heteropart/internal/report"
	"heteropart/internal/speed"
)

const (
	n    = 40_000_000 // elements to distribute
	minX = 1e4        // build domain
	maxX = 1e9
)

func main() {
	// Ground truth: three machines with distinct memory hierarchies.
	truth := []speed.Function{
		&speed.Analytic{Peak: 3e8, HalfRise: 1e4, Max: 2e9},
		&speed.Analytic{Peak: 2e8, HalfRise: 1e4, PagingPoint: 3e7, PagingWidth: 6e6, PagingFloor: 0.15, Max: 2e9},
		&speed.Analytic{Peak: 1e8, HalfRise: 1e4, Max: 2e9},
	}

	naive := make([]speed.Function, len(truth))
	robust := make([]speed.Function, len(truth))
	var naiveWall, robustWall time.Duration
	var naiveCalls, robustCalls int
	for i, f := range truth {
		fn := f
		calls := 0
		oracle := func(x float64) (float64, error) { calls++; return fn.Eval(x), nil }
		// The same seeded fault plan corrupts both pipelines identically.
		plan, err := faults.NewMeasurePlan(7+uint64(i),
			faults.MeasureFault{Kind: faults.Noise, Proc: 0, Sigma: 0.1},
			faults.MeasureFault{Kind: faults.Outlier, Proc: 0, Rate: 0.05, Factor: 4},
			faults.MeasureFault{Kind: faults.Hang, Proc: 0, At: 5, For: 300 * time.Millisecond},
		)
		if err != nil {
			log.Fatal(err)
		}

		b := speed.Builder{Eps: 0.05, MaxMeasurements: 200, LogDomain: true}
		calls = 0
		start := time.Now()
		nf, nStats, err := b.Build(faults.FaultyOracle(oracle, 0, plan), minX, maxX)
		naiveWall += time.Since(start)
		naiveCalls += calls
		if err != nil && nf == nil {
			log.Fatalf("machine %d: naive build: %v", i, err)
		}
		if err != nil {
			fmt.Printf("machine %d: naive build: %v (keeping the partial %d-point model)\n",
				i, err, nStats.Measurements)
		}
		naive[i] = nf

		r := measure.Robust{
			Timeout:        30 * time.Millisecond, // the 300 ms hang is abandoned here
			MinSamples:     25,
			MaxSamples:     100,
			TargetRelWidth: 0.01,
			Seed:           99 + uint64(i),
		}
		b.QualityTarget = 0.01
		calls = 0
		start = time.Now()
		rf, rStats, err := b.BuildQ(r.Oracle(faults.FaultyOracle(oracle, 0, plan)), minX, maxX)
		robustWall += time.Since(start)
		robustCalls += calls
		if err != nil {
			log.Fatalf("machine %d: robust build: %v", i, err)
		}
		robust[i] = rf
		worst := speed.Quality{}
		for _, pq := range rStats.Qualities {
			if pq.Quality.RelWidth > worst.RelWidth {
				worst = pq.Quality
			}
		}
		fmt.Printf("machine %d: robust model from %d points (%d re-measured), worst knot: %d samples, %d rejected, rel width %.4f\n",
			i, rStats.Measurements, rStats.Remeasured, worst.Samples, worst.Rejected, worst.RelWidth)
	}
	fmt.Printf("\nbuild cost: naive %d oracle calls in %v (sat through the hangs), robust %d calls in %v\n\n",
		naiveCalls, naiveWall.Round(time.Millisecond), robustCalls, robustWall.Round(time.Millisecond))

	ideal := partition(truth)
	pNaive := partition(naive)
	pRobust := partition(robust)

	t := report.New(
		fmt.Sprintf("Partitioning %d elements with models built from a noisy oracle (σ=0.1, 5%% outliers, one hang)", n),
		"machine", "ideal", "naive", "robust", "naive off by", "robust off by")
	for i := range truth {
		t.AddRow(fmt.Sprintf("m%d", i),
			float64(ideal[i]), float64(pNaive[i]), float64(pRobust[i]),
			fmt.Sprintf("%+d", pNaive[i]-ideal[i]),
			fmt.Sprintf("%+d", pRobust[i]-ideal[i]))
	}
	mIdeal := core.Makespan(ideal, truth)
	mNaive := core.Makespan(pNaive, truth)
	mRobust := core.Makespan(pRobust, truth)
	t.AddNote("true makespan of each partition: ideal %s s, naive %s s (+%.1f%%), robust %s s (+%.1f%%)",
		report.FormatFloat(mIdeal),
		report.FormatFloat(mNaive), 100*(mNaive/mIdeal-1),
		report.FormatFloat(mRobust), 100*(mRobust/mIdeal-1))
	fmt.Print(t)
}

func partition(fns []speed.Function) core.Allocation {
	res, err := core.Combined(n, fns)
	if err != nil {
		log.Fatal(err)
	}
	return res.Alloc
}
