package heteropart

// Sharded-fabric benchmarks: what a client pays when the member it asked
// is not the owner of the (tenant, model, n) key. Three paths over real
// loopback HTTP with keep-alive connections:
//
//   - local: the edge member owns the key and serves from its own cache —
//     the same wire path BenchmarkDaemonThroughput/warm measures, plus the
//     ownership decision.
//   - forwarded: the edge member relays the request bytes to the owner
//     over a pooled connection and relays the response bytes back. The
//     gap between this and local is the price of one extra network hop.
//   - quota: local serving with per-tenant admission enabled, so the
//     difference against local is the token-bucket probe alone.
//
// scripts/bench_fabric.sh records all three into BENCH_fabric.json.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"heteropart/internal/fabric"
	"heteropart/internal/rpc"
)

// startFabricBenchPair boots two daemons joined into one fabric, uploads
// the model "m" to both, and returns their base URLs plus an n owned by
// each member as seen from member 0.
func startFabricBenchPair(b *testing.B) (bases [2]string, nLocal, nRemote int64) {
	b.Helper()
	var ds [2]*rpc.Daemon
	for i := range ds {
		d, err := rpc.New(rpc.Config{Addr: "127.0.0.1:0", Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		addr, err := d.Listen()
		if err != nil {
			b.Fatal(err)
		}
		go d.Serve()
		b.Cleanup(func() { d.Shutdown(b.Context()) })
		ds[i] = d
		bases[i] = "http://" + addr.String()
	}
	for i, d := range ds {
		d.SetPeers([]string{bases[1-i]})
		if err := d.EnableFabric(bases[i]); err != nil {
			b.Fatal(err)
		}
	}
	doc := benchClusterDoc(8, 77)
	for _, base := range bases {
		resp, err := http.Post(base+"/v1/models?label=m", "application/json", bytes.NewReader(doc))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("model upload: HTTP %d", resp.StatusCode)
		}
	}
	// Walk n until member 0 sees both an owned key and a forwarded key.
	fab := ds[0].Fabric()
	tenant, family := fabric.TenantSpan([]byte("m"))
	for n := int64(5_000_000); nLocal == 0 || nRemote == 0; n += 1_000 {
		if fab.URL(fab.OwnerIndex(tenant, family, n)) == bases[0] {
			if nLocal == 0 {
				nLocal = n
			}
		} else if nRemote == 0 {
			nRemote = n
		}
	}
	return bases, nLocal, nRemote
}

// warmFabric asks base for (model m, n) until the answer is a cache hit,
// so the benchmark loop never measures a miss computation.
func warmFabric(b *testing.B, base string, n int64) []byte {
	b.Helper()
	body := []byte(fmt.Sprintf(`{"model":"m","n":%d}`, n))
	for i := 0; i < 8; i++ {
		resp, err := http.Post(base+"/v1/partition", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("warmup: HTTP %d: %s", resp.StatusCode, data)
		}
		if bytes.Contains(data, []byte(`"tier":"hit"`)) {
			return body
		}
	}
	b.Fatalf("n=%d never became a cache hit", n)
	return nil
}

// BenchmarkFabricForward measures owned-vs-forwarded serving through
// member 0 of a two-member fabric. req/s counts partition requests.
func BenchmarkFabricForward(b *testing.B) {
	bases, nLocal, nRemote := startFabricBenchPair(b)
	addr := strings.TrimPrefix(bases[0], "http://")

	localReq := rawRequest("/v1/partition", warmFabric(b, bases[0], nLocal))
	remoteReq := rawRequest("/v1/partition", warmFabric(b, bases[0], nRemote))

	run := func(name string, req []byte) {
		b.Run(name, func(b *testing.B) {
			rc := dialRaw(b, addr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rc.send(b, req, 1, "HTTP/1.1 200")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
	run("local", localReq)
	run("forwarded", remoteReq)
}

// BenchmarkFabricQuota measures the warm single-request path with
// per-tenant admission enabled at a rate the loop never exhausts; the
// delta against BenchmarkFabricForward/local is the token-bucket probe.
func BenchmarkFabricQuota(b *testing.B) {
	d, err := rpc.New(rpc.Config{
		Addr: "127.0.0.1:0", Dir: b.TempDir(),
		TenantQPS: 1e12, TenantBurst: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := d.Listen()
	if err != nil {
		b.Fatal(err)
	}
	go d.Serve()
	b.Cleanup(func() { d.Shutdown(b.Context()) })
	base := "http://" + addr.String()
	resp, err := http.Post(base+"/v1/models?label=m", "application/json",
		bytes.NewReader(benchClusterDoc(8, 77)))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("model upload: HTTP %d", resp.StatusCode)
	}

	req := rawRequest("/v1/partition", warmFabric(b, base, 5_000_000))
	rc := dialRaw(b, strings.TrimPrefix(base, "http://"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.send(b, req, 1, "HTTP/1.1 200")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
