module heteropart

go 1.22
