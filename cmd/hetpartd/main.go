// Command hetpartd is the partition-serving daemon: it keeps cluster speed
// models and served plans in a crash-safe store and answers partition
// requests over HTTP, restarting with a warm cache after any crash.
//
// Usage:
//
//	hetpartd -dir /var/lib/hetpartd [-addr 127.0.0.1:7411]
//	hetpartd -dir /var/lib/hetpartd2 -addr :7412 -replica-of http://127.0.0.1:7411
//
// Upload a model, then partition against it:
//
//	curl -X POST --data-binary @cluster.json 'localhost:7411/v1/models?label=lab'
//	curl -X POST -d '{"model":"lab","n":100000000}' localhost:7411/v1/partition
//
// A three-node self-healing cluster: one primary, two watching followers
// that gossip over -peers and elect a successor when the primary dies:
//
//	hetpartd -dir /var/lib/hp1 -addr :7411
//	hetpartd -dir /var/lib/hp2 -addr :7412 -id b -replica-of http://127.0.0.1:7411 \
//	         -watch -peers http://127.0.0.1:7413
//	hetpartd -dir /var/lib/hp3 -addr :7413 -id c -replica-of http://127.0.0.1:7411 \
//	         -watch -peers http://127.0.0.1:7412
//
// A three-node sharded serving fabric: models live in tenant namespaces
// ("acme/lab"), each (tenant, model, n) partition request has exactly one
// owner chosen by consistent hashing over the member list, and non-owners
// forward to the owner so every member answers any request:
//
//	hetpartd -dir /var/lib/hp1 -addr :7411 -fabric-self http://127.0.0.1:7411 \
//	         -peers http://127.0.0.1:7412,http://127.0.0.1:7413 -tenant-qps 500
//	hetpartd -dir /var/lib/hp2 -addr :7412 -fabric-self http://127.0.0.1:7412 \
//	         -peers http://127.0.0.1:7411,http://127.0.0.1:7413 -tenant-qps 500
//	hetpartd -dir /var/lib/hp3 -addr :7413 -fabric-self http://127.0.0.1:7413 \
//	         -peers http://127.0.0.1:7411,http://127.0.0.1:7412 -tenant-qps 500
//
// SIGTERM drains in-flight requests and folds the write-ahead log into a
// final snapshot; SIGKILL at any moment loses at most the requests that
// were never answered. See internal/rpc for the endpoints, internal/store
// for the durability design, and internal/fabric for tenancy and
// ownership (DESIGN §9, §12, §14).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"heteropart/internal/rpc"
)

// splitPeers parses the -peers list, dropping empty entries so a trailing
// comma is harmless.
func splitPeers(csv string) []string {
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7411", "listen address (use :0 for an ephemeral port)")
		dir        = flag.String("dir", "", "store directory (required; created if missing)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		cacheCap   = flag.Int("cache", 0, "plan cache capacity (0 = default)")
		noDoor     = flag.Bool("no-doorkeeper", false, "admit plans on first miss instead of second")
		maxBatch   = flag.Int("max-batch", 0, "max requests per engine dispatch cycle (0 = default)")
		queueDepth = flag.Int("queue", 0, "request queue depth (0 = default)")
		compactAt  = flag.Int64("compact-at", 0, "WAL bytes that trigger snapshot compaction (0 = default 4MiB)")
		syncEvery  = flag.Int("sync-every", 0, "deprecated alias of -wal-sync-every (ignored when both are set)")
		walSyncEv  = flag.Int("wal-sync-every", 0, "fsync the WAL every N records, must be >= 1 (0 = default 64, 1 = every record)")
		drain      = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
		replicaOf  = flag.String("replica-of", "", "follow the primary hetpartd at this base URL (read-only until promoted)")
		reconnect  = flag.Duration("reconnect-base", 0, "base pause of the follower's jittered reconnect backoff (0 = default 100ms)")
		replicaWt  = flag.Duration("replica-wait", 0, "long-poll hold when streaming the primary's WAL (0 = default 2s)")
		id         = flag.String("id", "", "stable member identity for elections (default: the listen address)")
		peersCSV   = flag.String("peers", "", "comma-separated base URLs of the other cluster members (not the primary)")
		watchFlag  = flag.Bool("watch", false, "run the failure detector: probe the primary and self-heal when it dies")
		probeInt   = flag.Duration("probe-interval", 0, "failure-detector probe cadence (0 = default 500ms)")
		probeTo    = flag.Duration("probe-timeout", 0, "deadline for one probe (0 = probe interval)")
		suspectN   = flag.Int("suspect-after", 0, "consecutive probe misses before suspecting the primary (0 = default 3)")
		handoverTo = flag.Duration("handover-timeout", 0, "planned-demotion wait for the successor to drain (0 = default 10s)")
		fabricSelf = flag.String("fabric-self", "", "this member's base URL in the sharded serving fabric (enables ownership + forwarding over -peers)")
		fabricTo   = flag.Duration("fabric-timeout", 0, "deadline for one forwarded partition request (0 = default 2s)")
		tenantQPS  = flag.Float64("tenant-qps", 0, "per-tenant partition request rate limit (0 = unlimited)")
		tenantBst  = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = default ceil(-tenant-qps))")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "hetpartd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	sync := *walSyncEv
	walSyncSet, syncEverySet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "wal-sync-every":
			walSyncSet = true
		case "sync-every":
			syncEverySet = true
		}
	})
	if walSyncSet && *walSyncEv < 1 {
		fmt.Fprintln(os.Stderr, "hetpartd: -wal-sync-every must be >= 1")
		os.Exit(2)
	}
	if syncEverySet {
		fmt.Fprintln(os.Stderr, "hetpartd: -sync-every is deprecated; use -wal-sync-every")
		if !walSyncSet {
			sync = *syncEvery
		}
	}
	err := rpc.Run(rpc.Config{
		Addr:            *addr,
		Dir:             *dir,
		AddrFile:        *addrFile,
		CacheCapacity:   *cacheCap,
		NoDoorkeeper:    *noDoor,
		MaxBatch:        *maxBatch,
		QueueDepth:      *queueDepth,
		CompactAt:       *compactAt,
		SyncEvery:       sync,
		ReplicaOf:       *replicaOf,
		ReconnectBase:   *reconnect,
		ReplicaWait:     *replicaWt,
		ID:              *id,
		Peers:           splitPeers(*peersCSV),
		Watch:           *watchFlag,
		ProbeInterval:   *probeInt,
		ProbeTimeout:    *probeTo,
		SuspectAfter:    *suspectN,
		HandoverTimeout: *handoverTo,
		FabricSelf:      *fabricSelf,
		FabricTimeout:   *fabricTo,
		TenantQPS:       *tenantQPS,
		TenantBurst:     *tenantBst,
		DrainTimeout:    *drain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetpartd:", err)
		os.Exit(1)
	}
}
