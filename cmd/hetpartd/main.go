// Command hetpartd is the partition-serving daemon: it keeps cluster speed
// models and served plans in a crash-safe store and answers partition
// requests over HTTP, restarting with a warm cache after any crash.
//
// Usage:
//
//	hetpartd -dir /var/lib/hetpartd [-addr 127.0.0.1:7411]
//	hetpartd -dir /var/lib/hetpartd2 -addr :7412 -replica-of http://127.0.0.1:7411
//
// Upload a model, then partition against it:
//
//	curl -X POST --data-binary @cluster.json 'localhost:7411/v1/models?label=lab'
//	curl -X POST -d '{"model":"lab","n":100000000}' localhost:7411/v1/partition
//
// SIGTERM drains in-flight requests and folds the write-ahead log into a
// final snapshot; SIGKILL at any moment loses at most the requests that
// were never answered. See internal/rpc for the endpoints and internal/
// store for the durability design (DESIGN §9).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"heteropart/internal/rpc"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7411", "listen address (use :0 for an ephemeral port)")
		dir        = flag.String("dir", "", "store directory (required; created if missing)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		cacheCap   = flag.Int("cache", 0, "plan cache capacity (0 = default)")
		noDoor     = flag.Bool("no-doorkeeper", false, "admit plans on first miss instead of second")
		maxBatch   = flag.Int("max-batch", 0, "max requests per engine dispatch cycle (0 = default)")
		queueDepth = flag.Int("queue", 0, "request queue depth (0 = default)")
		compactAt  = flag.Int64("compact-at", 0, "WAL bytes that trigger snapshot compaction (0 = default 4MiB)")
		syncEvery  = flag.Int("sync-every", 0, "fsync the WAL every N records (0 = default 64, 1 = every record)")
		drain      = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
		replicaOf  = flag.String("replica-of", "", "follow the primary hetpartd at this base URL (read-only until promoted)")
		reconnect  = flag.Duration("reconnect-base", 0, "base pause of the follower's jittered reconnect backoff (0 = default 100ms)")
		replicaWt  = flag.Duration("replica-wait", 0, "long-poll hold when streaming the primary's WAL (0 = default 2s)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "hetpartd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	err := rpc.Run(rpc.Config{
		Addr:          *addr,
		Dir:           *dir,
		AddrFile:      *addrFile,
		CacheCapacity: *cacheCap,
		NoDoorkeeper:  *noDoor,
		MaxBatch:      *maxBatch,
		QueueDepth:    *queueDepth,
		CompactAt:     *compactAt,
		SyncEvery:     *syncEvery,
		ReplicaOf:     *replicaOf,
		ReconnectBase: *reconnect,
		ReplicaWait:   *replicaWt,
		DrainTimeout:  *drain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetpartd:", err)
		os.Exit(1)
	}
}
