// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations listed in DESIGN.md, and prints them as
// aligned ASCII tables (or CSV).
//
// Usage:
//
//	experiments [-quick] [-skip-real] [-csv]
//	experiments -quick -cpuprofile cpu.out -memprofile mem.out
//
// -quick trims the sweeps so the suite finishes in seconds; the default
// regenerates the full paper-sized rows (the real-host Tables 3–4 halves
// then take a few minutes of serial matrix arithmetic).
//
// -cpuprofile and -memprofile write pprof profiles covering the whole run —
// the zero-allocation claims of the partitioner hot path were established
// with exactly these profiles (`go tool pprof -list`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"heteropart/internal/experiments"
	"heteropart/internal/pool"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick      = flag.Bool("quick", false, "trimmed sweeps (seconds instead of minutes)")
		skipReal   = flag.Bool("skip-real", false, "skip the real-host measurements of Tables 3-4")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		markdown   = flag.Bool("markdown", false, "emit Markdown tables")
		charts     = flag.Bool("charts", false, "render the Figure 1 and Figure 22 series as ASCII charts and exit")
		only       = flag.String("only", "", "run only artifacts whose name contains this substring (e.g. fig22, ablation)")
		workers    = flag.Int("workers", 0, "worker pool width for concurrent artifacts and parallel kernels (0 = GOMAXPROCS)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()
	pool.SetDefault(*workers)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set before the heap dump
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			}
		}()
	}
	opt := experiments.Options{Quick: *quick, SkipReal: *skipReal, Only: *only, Workers: *workers}
	if *charts {
		f1, err := experiments.Fig1Charts()
		if err != nil {
			return err
		}
		var mmNs, luNs []int
		if *quick {
			mmNs = []int{15000, 19000, 23000, 27000, 31000}
			luNs = []int{16000, 20000, 24000, 28000, 32000}
		}
		f22, err := experiments.Fig22Charts(mmNs, luNs)
		if err != nil {
			return err
		}
		for _, c := range append(f1, f22...) {
			fmt.Println(c)
		}
		return nil
	}
	if *csv || *markdown {
		tables, err := experiments.RunAll(nil, opt)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if *markdown {
				fmt.Printf("%s\n", t.Markdown())
			} else {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			}
		}
		return nil
	}
	_, err := experiments.RunAll(os.Stdout, opt)
	return err
}
