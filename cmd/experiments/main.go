// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations listed in DESIGN.md, and prints them as
// aligned ASCII tables (or CSV).
//
// Usage:
//
//	experiments [-quick] [-skip-real] [-csv]
//
// -quick trims the sweeps so the suite finishes in seconds; the default
// regenerates the full paper-sized rows (the real-host Tables 3–4 halves
// then take a few minutes of serial matrix arithmetic).
package main

import (
	"flag"
	"fmt"
	"os"

	"heteropart/internal/experiments"
	"heteropart/internal/pool"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "trimmed sweeps (seconds instead of minutes)")
		skipReal = flag.Bool("skip-real", false, "skip the real-host measurements of Tables 3-4")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		markdown = flag.Bool("markdown", false, "emit Markdown tables")
		charts   = flag.Bool("charts", false, "render the Figure 1 and Figure 22 series as ASCII charts and exit")
		only     = flag.String("only", "", "run only artifacts whose name contains this substring (e.g. fig22, ablation)")
		workers  = flag.Int("workers", 0, "worker pool width for concurrent artifacts and parallel kernels (0 = GOMAXPROCS)")
	)
	flag.Parse()
	pool.SetDefault(*workers)
	opt := experiments.Options{Quick: *quick, SkipReal: *skipReal, Only: *only, Workers: *workers}
	if *charts {
		f1, err := experiments.Fig1Charts()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		var mmNs, luNs []int
		if *quick {
			mmNs = []int{15000, 19000, 23000, 27000, 31000}
			luNs = []int{16000, 20000, 24000, 28000, 32000}
		}
		f22, err := experiments.Fig22Charts(mmNs, luNs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, c := range append(f1, f22...) {
			fmt.Println(c)
		}
		return
	}
	if *csv || *markdown {
		tables, err := experiments.RunAll(nil, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *markdown {
				fmt.Printf("%s\n", t.Markdown())
			} else {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			}
		}
		return
	}
	if _, err := experiments.RunAll(os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
