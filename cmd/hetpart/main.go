// Command hetpart partitions an n-element set over heterogeneous
// processors described by a JSON cluster file (see internal/clusterio for
// the format), using the paper's functional-model algorithms.
//
// Usage:
//
//	hetpart -n 100000000 -machines cluster.json [-algo combined] [-csv]
//	hetpart -n 100000000 -machines cluster.json -limits 1e7,5e8,...   # bounded
//	hetpart -grid 8000x8000 -machines cluster.json                    # 2D rectangles
//	hetpart -n 100000000 -machines cluster.json -fail p3@t=1.5s       # fault drill
//	hetpart -n 100000000 -machines cluster.json -serve -bench-requests 100000  # serving engine
//
// The cluster file holds a list of processors, each with a piecewise
// linear speed function ("points"), a constant speed ("speed"/"max"), a
// step function ("levels"), or a modelled machine spec ("spec") expanded
// for the cluster's kernel. Speeds are per-element; sizes in elements.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"heteropart/internal/clusterio"
	"heteropart/internal/core"
	"heteropart/internal/faults"
	"heteropart/internal/grid"
	"heteropart/internal/pool"
	"heteropart/internal/report"
	"heteropart/internal/sim"
	"heteropart/internal/speed"
)

// repeatedFlag collects every occurrence of a repeatable string flag.
type repeatedFlag []string

func (r *repeatedFlag) String() string     { return strings.Join(*r, ",") }
func (r *repeatedFlag) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hetpart:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int64("n", 0, "number of elements to distribute")
		machines = flag.String("machines", "", "JSON cluster file (see internal/clusterio)")
		algo     = flag.String("algo", "combined", "partitioning algorithm: basic, modified, combined, even")
		limits   = flag.String("limits", "", "comma-separated per-processor element limits (bounded variant)")
		gridDims = flag.String("grid", "", "WxH: partition a 2D grid into rectangles instead of a set")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		grace    = flag.Float64("grace", 1.5, "failure-detection timeout as a multiple of the predicted finish time")
		drift    = flag.Float64("drift", 0, "EWMA relative-error threshold of the model drift detector; >0 adds drift-aware makespan notes to fault drills")
		workers  = flag.Int("workers", 0, "worker pool width for any real kernel execution (0 = GOMAXPROCS)")

		serveMode   = flag.Bool("serve", false, "benchmark the partition-serving engine instead of printing one plan (requires -bench-requests)")
		benchReqs   = flag.Int("bench-requests", 0, "with -serve: total partition requests to fire through the engine")
		reqWorkers  = flag.Int("req-workers", 8, "with -serve: concurrent request submitters")
		reqSpread   = flag.Float64("req-spread", 0.2, "with -serve: relative spread of request sizes around -n, in [0, 1)")
		reqDistinct = flag.Int("req-distinct", 16, "with -serve: distinct request sizes in the stream")
		reqAlgos    = flag.String("req-algos", "", "with -serve: comma-separated algorithms cycled through the stream, or \"mixed\" for all three (default: the -algo value)")
		reqMixOpts  = flag.Bool("req-mix-options", false, "with -serve: also cycle partitioner option sets through the stream")

		fail repeatedFlag
	)
	flag.Var(&fail, "fail", "fault spec, repeatable: p3@t=1.5s, X2@t=1s,slow=0.4,for=2s, p1@t=2s,stall,for=0.5s, link@t=0.5s,for=1s (see internal/faults); added to the cluster file's own \"faults\"")
	flag.Parse()
	pool.SetDefault(*workers)
	if *machines == "" {
		return fmt.Errorf("-machines is required")
	}
	cluster, err := clusterio.LoadFile(*machines)
	if err != nil {
		return err
	}
	if *gridDims != "" {
		return runGrid(cluster, *gridDims, *csv)
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	if *serveMode {
		list := *reqAlgos
		if list == "" {
			list = *algo
		}
		algos, err := parseAlgos(list)
		if err != nil {
			return err
		}
		return runServeBench(cluster, *n, serveBenchOptions{
			Requests:   *benchReqs,
			Workers:    *reqWorkers,
			Distinct:   *reqDistinct,
			Spread:     *reqSpread,
			Algos:      algos,
			MixOptions: *reqMixOpts,
			CSV:        *csv,
		})
	}
	fns, names, err := cluster.Functions(float64(*n))
	if err != nil {
		return err
	}

	var res core.Result
	switch {
	case *limits != "":
		lims, err := parseLimits(*limits, len(fns))
		if err != nil {
			return err
		}
		alloc, stats, err := core.Bounded(*n, fns, lims)
		if err != nil {
			return err
		}
		res = core.Result{Alloc: alloc, Stats: stats}
	default:
		var err error
		switch *algo {
		case "basic":
			res, err = core.Basic(*n, fns)
		case "modified":
			res, err = core.Modified(*n, fns)
		case "combined":
			res, err = core.Combined(*n, fns)
		case "even":
			alloc, e := core.Even(*n, len(fns))
			res, err = core.Result{Alloc: alloc, Stats: core.Stats{Algorithm: "even"}}, e
		default:
			return fmt.Errorf("unknown algorithm %q", *algo)
		}
		if err != nil {
			return err
		}
	}

	t := report.New(
		fmt.Sprintf("Distribution of %d elements (%s algorithm, %d steps, %d intersections)",
			*n, res.Stats.Algorithm, res.Stats.Steps, res.Stats.Intersections),
		"processor", "elements", "share %", "speed (el/s)", "time (s)")
	for i, x := range res.Alloc {
		sp := fns[i].Eval(float64(x))
		tm := 0.0
		if x > 0 && sp > 0 {
			tm = float64(x) / sp
		}
		t.AddRow(names[i], float64(x), 100*float64(x)/float64(*n), sp, tm)
	}
	t.AddNote("makespan: %s s", report.FormatFloat(core.Makespan(res.Alloc, fns)))
	specs := append(append([]string(nil), cluster.Faults...), fail...)
	if len(specs) > 0 {
		if err := addFaultNotes(t, specs, names, res.Alloc, fns, *grace, *drift); err != nil {
			return err
		}
	}
	return emit(t, *csv)
}

// addFaultNotes evaluates the distribution under the fault plan with the
// closed-form model and appends the FPM-aware recovered makespan next to
// the naive rerun-from-scratch baseline.
func addFaultNotes(t *report.Table, specs, names []string, alloc core.Allocation, fns []speed.Function, grace, drift float64) error {
	plan, err := faults.ParseSpecs(specs, names)
	if err != nil {
		return err
	}
	tasks := make([]sim.Task, len(alloc))
	for i, x := range alloc {
		tasks[i] = sim.Task{Work: float64(x), Size: float64(x)}
	}
	opt := sim.FaultyOptions{Plan: plan, Grace: grace}
	faulty, err := sim.FaultyMakespan(tasks, fns, opt)
	if err != nil {
		return err
	}
	if len(faulty.Failed) == 0 {
		t.AddNote("faults: no processor lost; makespan under the plan: %s s",
			report.FormatFloat(faulty.Makespan))
		if drift > 0 {
			if err := addDriftNotes(t, tasks, names, fns, opt, drift); err != nil {
				return err
			}
		}
		return nil
	}
	lost := make([]string, len(faulty.Failed))
	for k, i := range faulty.Failed {
		lost[k] = names[i]
	}
	naive, err := sim.NaiveRerunMakespan(tasks, fns, opt)
	if err != nil {
		return err
	}
	t.AddNote("faults: %s lost (last detected at %s s, %v elements redistributed)",
		strings.Join(lost, ", "), report.FormatFloat(faulty.DetectedAt), faulty.MovedWork)
	t.AddNote("recovered makespan (FPM repartitioning): %s s", report.FormatFloat(faulty.Makespan))
	t.AddNote("naive rerun-from-scratch makespan: %s s", report.FormatFloat(naive.Makespan))
	return nil
}

// addDriftNotes re-evaluates the plan with the EWMA drift monitor in the
// loop: processors that survive but run persistently off-model are caught
// by the detector, their models refreshed from observed speed, and the
// remaining work repartitioned — the closed measurement loop, without any
// failure.
func addDriftNotes(t *report.Table, tasks []sim.Task, names []string, fns []speed.Function, opt sim.FaultyOptions, threshold float64) error {
	dres, err := sim.DriftMakespan(tasks, fns, opt, sim.DriftOptions{Threshold: threshold})
	if err != nil {
		return err
	}
	if len(dres.Stale) == 0 {
		t.AddNote("drift: no model declared stale (threshold %s)", report.FormatFloat(threshold))
		return nil
	}
	stale := make([]string, len(dres.Stale))
	for k, i := range dres.Stale {
		stale[k] = names[i]
	}
	t.AddNote("drift: model stale on %s (EWMA error past %s at t=%s s; %s elements repartitioned)",
		strings.Join(stale, ", "), report.FormatFloat(threshold),
		report.FormatFloat(dres.RefreshedAt), report.FormatFloat(dres.MovedWork))
	t.AddNote("drift-refreshed makespan: %s s", report.FormatFloat(dres.Makespan))
	return nil
}

func runGrid(cluster *clusterio.Cluster, dims string, csv bool) error {
	parts := strings.SplitN(dims, "x", 2)
	if len(parts) != 2 {
		return fmt.Errorf("-grid wants WxH, got %q", dims)
	}
	w, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("-grid width: %w", err)
	}
	h, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("-grid height: %w", err)
	}
	fns, names, err := cluster.Functions(float64(w) * float64(h))
	if err != nil {
		return err
	}
	res, err := grid.Partition2D(w, h, fns, grid.Options{})
	if err != nil {
		return err
	}
	t := report.New(
		fmt.Sprintf("2D partition of a %d×%d grid (%d columns, makespan %s s)",
			w, h, res.Columns, report.FormatFloat(res.Makespan)),
		"processor", "rectangle", "cells", "share %", "time (s)")
	total := float64(w) * float64(h)
	for i, r := range res.Rects {
		tm := 0.0
		if a := float64(r.Area()); a > 0 {
			tm = a / fns[i].Eval(a)
		}
		t.AddRow(names[i], r.String(), float64(r.Area()), 100*float64(r.Area())/total, tm)
	}
	t.AddNote("total semi-perimeter (communication proxy): %d", grid.TotalSemiPerimeter(res.Rects))
	return emit(t, csv)
}

func emit(t *report.Table, csv bool) error {
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t)
	}
	return nil
}

func parseLimits(s string, p int) ([]int64, error) {
	fields := strings.Split(s, ",")
	if len(fields) != p {
		return nil, fmt.Errorf("-limits has %d entries for %d processors", len(fields), p)
	}
	out := make([]int64, p)
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("-limits entry %d: %w", i, err)
		}
		out[i] = int64(v)
	}
	return out, nil
}
