package main

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"heteropart/internal/clusterio"
	"heteropart/internal/core"
	"heteropart/internal/report"
	"heteropart/internal/serve"
)

// serveBenchOptions shapes the request stream of runServeBench.
type serveBenchOptions struct {
	Requests int     // total requests to fire
	Workers  int     // concurrent submitters
	Distinct int     // distinct problem sizes in the stream
	Spread   float64 // relative size spread around n, e.g. 0.2 = ±20%
	// Algos is cycled through per request, so a multi-entry list produces
	// a mixed-algorithm stream (distinct cache keys per algorithm).
	Algos []core.Algorithm
	// MixOptions additionally cycles result-affecting option sets through
	// the stream, multiplying the distinct plans requested.
	MixOptions bool
	CSV        bool
}

// benchOptionVariants are the option sets a -req-mix-options stream cycles
// through; each produces its own cache key on the same (model, n, algo).
var benchOptionVariants = [][]core.Option{
	nil,
	{core.WithoutFineTune()},
	{core.WithMaxSteps(64)},
}

// runServeBench stands up a partition-serving engine over the cluster and
// drives it with a synthetic request stream: Distinct sizes spread ±Spread
// around n, fired by Workers concurrent clients. The stream is the shape an
// adaptive executor or a simulation grid produces — a handful of distinct
// plans requested over and over — so the engine's batching, coalescing, and
// cache tiers all get exercised, and the report shows how much of the load
// each tier absorbed.
func runServeBench(cluster *clusterio.Cluster, n int64, opt serveBenchOptions) error {
	if opt.Requests <= 0 {
		return fmt.Errorf("-bench-requests must be positive")
	}
	if opt.Workers <= 0 {
		opt.Workers = 8
	}
	if opt.Distinct <= 0 {
		opt.Distinct = 16
	}
	if opt.Spread < 0 || opt.Spread >= 1 {
		return fmt.Errorf("-req-spread must be in [0, 1)")
	}
	if len(opt.Algos) == 0 {
		opt.Algos = []core.Algorithm{core.AlgoCombined}
	}
	fns, _, err := cluster.Functions(float64(n))
	if err != nil {
		return err
	}
	sizes := requestSizes(n, opt.Distinct, opt.Spread)

	e := serve.New(serve.Config{})
	defer e.Close()
	// One cold request primes nothing but validates the cluster before the
	// clock starts; its plan is evicted from the measurement by resetting
	// nothing — it is simply part of warm-up reality, counted like any other.
	if _, err := e.Partition(serve.Request{Algo: opt.Algos[0], N: sizes[0], Fns: fns}); err != nil {
		return err
	}

	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
	)
	var firstErr error
	start := time.Now()
	per := opt.Requests / opt.Workers
	extra := opt.Requests % opt.Workers
	for w := 0; w < opt.Workers; w++ {
		count := per
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			for i := 0; i < count; i++ {
				seq := w + i*opt.Workers
				req := serve.Request{
					Algo: opt.Algos[seq%len(opt.Algos)],
					N:    sizes[seq%len(sizes)],
					Fns:  fns,
				}
				if opt.MixOptions {
					req.Opts = benchOptionVariants[seq%len(benchOptionVariants)]
				}
				if _, err := e.Partition(req); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w, count)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	algoNames := make([]string, len(opt.Algos))
	for i, a := range opt.Algos {
		algoNames[i] = a.String()
	}
	mixNote := ""
	if opt.MixOptions {
		mixNote = fmt.Sprintf(", %d option sets", len(benchOptionVariants))
	}
	m := e.Metrics()
	t := report.New(
		fmt.Sprintf("Partition-serving engine: %d requests, %d workers, %d distinct sizes (±%.0f%% around %d), algorithms %s%s",
			opt.Requests, opt.Workers, len(sizes), 100*opt.Spread, n, strings.Join(algoNames, "+"), mixNote),
		"metric", "value")
	t.AddRow("throughput (req/s)", float64(opt.Requests)/elapsed.Seconds())
	t.AddRow("mean latency (µs)", float64(m.AvgLatency.Nanoseconds())/1e3)
	t.AddRow("batches", float64(m.Batches))
	t.AddRow("mean batch size", m.AvgBatch)
	t.AddRow("max batch size", float64(m.MaxBatch))
	t.AddRow("coalesced in batch", float64(m.Coalesced))
	t.AddRow("cache hits", float64(m.Cache.Hits))
	t.AddRow("cache misses", float64(m.Cache.Misses))
	t.AddRow("warm-started misses", float64(m.Cache.WarmStarts))
	t.AddRow("shared in-flight", float64(m.Cache.Shared))
	if m.Cache.Rejected > 0 {
		t.AddRow("doorkeeper rejected", float64(m.Cache.Rejected))
	}
	// Per-algorithm breakdown, in stable algorithm order.
	names := make([]string, 0, len(m.ByAlgo))
	for _, a := range []core.Algorithm{core.AlgoBasic, core.AlgoModified, core.AlgoCombined} {
		if _, ok := m.ByAlgo[a.String()]; ok {
			names = append(names, a.String())
		}
	}
	for _, name := range names {
		a := m.ByAlgo[name]
		t.AddRow(fmt.Sprintf("%s requests", name), float64(a.Requests))
		t.AddRow(fmt.Sprintf("%s hit rate (%%)", name), 100*a.HitRate())
	}
	t.AddNote("cache hit rate: %.1f%%; only %d of %d requests computed a plan from scratch",
		100*m.Cache.HitRate(), m.Cache.Misses, m.Requests)
	return emit(t, opt.CSV)
}

// requestSizes spreads count problem sizes deterministically over
// [n·(1-spread), n·(1+spread)]; the first size is always n itself.
func requestSizes(n int64, count int, spread float64) []int64 {
	sizes := make([]int64, 0, count)
	sizes = append(sizes, n)
	rng := uint32(0x9747b28c)
	for len(sizes) < count {
		rng = rng*1664525 + 1013904223
		f := 1 + spread*(2*float64(rng%10_000)/10_000-1)
		sz := int64(float64(n) * f)
		if sz < 1 {
			sz = 1
		}
		sizes = append(sizes, sz)
	}
	return sizes
}

// parseAlgo maps the -algo flag onto a serving-engine algorithm.
func parseAlgo(name string) (core.Algorithm, error) {
	switch name {
	case "basic":
		return core.AlgoBasic, nil
	case "modified":
		return core.AlgoModified, nil
	case "combined":
		return core.AlgoCombined, nil
	default:
		return 0, fmt.Errorf("-serve supports basic, modified, combined; got %q", name)
	}
}

// parseAlgos maps the -req-algos flag onto the stream's algorithm cycle:
// a comma-separated list, or "mixed" for all three.
func parseAlgos(list string) ([]core.Algorithm, error) {
	if list == "mixed" {
		return []core.Algorithm{core.AlgoBasic, core.AlgoModified, core.AlgoCombined}, nil
	}
	var algos []core.Algorithm
	for _, name := range strings.Split(list, ",") {
		a, err := parseAlgo(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		algos = append(algos, a)
	}
	return algos, nil
}
