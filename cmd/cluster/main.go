// Command cluster inspects and exports the modelled testbeds of the paper.
//
// Usage:
//
//	cluster -testbed table2 -kernel MatrixMult -table   # speed table
//	cluster -testbed table2 -kernel MatrixMult -chart   # ASCII speed chart
//	cluster -testbed table1 -export > table1.json       # hetpart cluster file
//
// The exported JSON can be fed to hetpart -machines and edited to describe
// your own network.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"heteropart/internal/clusterio"
	"heteropart/internal/machine"
	"heteropart/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		testbed = flag.String("testbed", "table2", "testbed: table1 or table2")
		kernel  = flag.String("kernel", "MatrixMult", "kernel: MatrixMult, MatrixMultATLAS, ArrayOpsF, LUFact")
		export  = flag.Bool("export", false, "write the testbed as a hetpart cluster file to stdout")
		chart   = flag.Bool("chart", false, "render the speed functions as an ASCII chart")
	)
	flag.Parse()

	var ms []machine.Machine
	switch *testbed {
	case "table1":
		ms = machine.Table1()
	case "table2":
		ms = machine.Table2()
	default:
		return fmt.Errorf("unknown testbed %q", *testbed)
	}
	k, err := machine.KernelByName(*kernel)
	if err != nil {
		return err
	}

	if *export {
		c, err := clusterio.FromTestbed(ms, k.Name)
		if err != nil {
			return err
		}
		return c.Save(os.Stdout)
	}

	if *chart {
		c := report.NewChart(
			fmt.Sprintf("%s — %s speed functions", *testbed, k.Name),
			"working set (elements)", "MFlops")
		c.LogX, c.LogY = true, true
		for _, m := range ms {
			f, err := m.FlopRate(k)
			if err != nil {
				return err
			}
			var xs, ys []float64
			for x := f.Max * 1e-4; x <= f.Max; x *= 1.3 {
				xs = append(xs, x)
				ys = append(ys, f.Eval(x)/1e6)
			}
			if err := c.AddSeries(m.Name, xs, ys); err != nil {
				return err
			}
		}
		fmt.Println(c)
		return nil
	}

	t := report.New(
		fmt.Sprintf("%s — %s model", *testbed, k.Name),
		"machine", "MHz", "mem (MB)", "cache (KB)", "integration",
		"peak (MFlops)", "paging at (elements)", "speed@paging/2", "speed@2·paging")
	for _, m := range ms {
		f, err := m.FlopRate(k)
		if err != nil {
			return err
		}
		t.AddRow(m.Name, m.MHz, m.MainMemKB/1024, m.CacheKB, m.Integration.String(),
			peakOf(f)/1e6, f.PagingPoint,
			f.Eval(f.PagingPoint/2)/1e6, f.Eval(2*f.PagingPoint)/1e6)
	}
	fmt.Print(t)
	return nil
}

// peakOf samples the curve's maximum on a log grid.
func peakOf(f interface {
	Eval(float64) float64
	MaxSize() float64
}) float64 {
	var peak float64
	maxX := f.MaxSize()
	for i := 0; i <= 128; i++ {
		x := maxX * math.Pow(1e-6, 1-float64(i)/128)
		peak = math.Max(peak, f.Eval(x))
	}
	return peak
}
