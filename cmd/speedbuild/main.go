// Command speedbuild constructs a piecewise linear speed function for this
// host by really measuring one of the serial kernels across problem sizes,
// using the recursive trisection procedure of §3.1. The result is printed
// as JSON compatible with hetpart's machines file.
//
// Usage:
//
//	speedbuild -kernel naive -min 12288 -max 3e6 [-eps 0.05] [-repeats 3]
//
// Kernels: naive and blocked matrix multiplication (sizes are total
// elements of the three matrices, 3n²), lu (elements of the factorized
// matrix, n²), arrayops (array length).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"heteropart/internal/measure"
	"heteropart/internal/speed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "speedbuild:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kernel  = flag.String("kernel", "naive", "kernel to measure: naive, blocked, lu, cholesky, arrayops")
		minSize = flag.Float64("min", 3*64*64, "smallest problem size (elements)")
		maxSize = flag.Float64("max", 3*512*512, "largest problem size (elements)")
		eps     = flag.Float64("eps", 0.05, "relative acceptance band of the §3.1 procedure")
		repeats = flag.Int("repeats", 3, "timed repetitions per measurement (median)")
		budget  = flag.Int("budget", 64, "maximum number of measurements")
		name    = flag.String("name", "", "processor name in the emitted JSON (default: kernel name)")
		workers = flag.Int("workers", 1, "kernel worker threads: 1 measures the serial kernels, >1 or 0 (= GOMAXPROCS) the parallel ones")
	)
	flag.Parse()
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	cfg := measure.Config{Repeats: *repeats, Workers: *workers}
	var oracle speed.Oracle
	switch *kernel {
	case "naive":
		oracle = measure.MatMulOracle(cfg, measure.Naive)
	case "blocked":
		oracle = measure.MatMulOracle(cfg, measure.Blocked)
	case "lu":
		oracle = measure.LUOracle(cfg)
	case "cholesky":
		oracle = measure.CholeskyOracle(cfg)
	case "arrayops":
		oracle = measure.ArrayOpsOracle(cfg)
	default:
		return fmt.Errorf("unknown kernel %q", *kernel)
	}
	if !(*minSize > 0) || !(*maxSize > *minSize) {
		return fmt.Errorf("invalid size interval [%v, %v]", *minSize, *maxSize)
	}
	b := speed.Builder{Eps: *eps, MaxMeasurements: *budget, LogDomain: true}
	fn, stats, err := b.Build(oracle, *minSize, *maxSize)
	if err != nil && fn == nil {
		return err
	}
	label := *name
	if label == "" {
		label = *kernel
	}
	out := struct {
		Name         string        `json:"name"`
		Points       []speed.Point `json:"points"`
		Measurements int           `json:"measurements"`
		Repaired     bool          `json:"repaired"`
		Note         string        `json:"note,omitempty"`
	}{
		Name:         label,
		Points:       fn.Points(),
		Measurements: stats.Measurements,
		Repaired:     stats.Repaired,
	}
	if err != nil {
		out.Note = err.Error()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
