// Command speedbuild constructs a piecewise linear speed function for this
// host by really measuring one of the serial kernels across problem sizes,
// using the recursive trisection procedure of §3.1. The result is printed
// as JSON compatible with hetpart's machines file.
//
// Usage:
//
//	speedbuild -kernel naive -min 12288 -max 3e6 [-eps 0.05] [-repeats 3]
//	speedbuild -kernel lu -timeout 10s -max-repeats 12 -ci 0.03 -o lu.json
//
// Kernels: naive and blocked matrix multiplication (sizes are total
// elements of the three matrices, 3n²), lu (elements of the factorized
// matrix, n²), arrayops (array length).
//
// With -timeout, -max-repeats or -ci the robust measurement pipeline is
// used: every kernel timing is bounded by the deadline, retried with
// jittered backoff on transient failure, repeated adaptively until its
// MAD-based confidence width falls under the -ci target, and the per-knot
// measurement qualities are emitted alongside the points. -fail specs
// (repeatable; grammar noise:p0:sigma=0.1, outlier:p0:rate=0.05:factor=4,
// err:p0:at=3, hang:p0:at=3:for=0.5s, slow:p0:factor=0.5) inject seeded
// measurement faults for pipeline validation.
//
// A build that fails — oracle error, measurement budget exhausted before
// convergence — exits non-zero with a diagnostic and leaves the -o output
// file untouched; no partial model is ever written.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"heteropart/internal/faults"
	"heteropart/internal/measure"
	"heteropart/internal/speed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "speedbuild:", err)
		os.Exit(1)
	}
}

// stringList collects a repeatable flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run() error {
	var failSpecs stringList
	var (
		kernel  = flag.String("kernel", "naive", "kernel to measure: naive, blocked, lu, cholesky, arrayops")
		minSize = flag.Float64("min", 3*64*64, "smallest problem size (elements)")
		maxSize = flag.Float64("max", 3*512*512, "largest problem size (elements)")
		eps     = flag.Float64("eps", 0.05, "relative acceptance band of the §3.1 procedure")
		repeats = flag.Int("repeats", 3, "timed repetitions per measurement (median; the robust pipeline's minimum)")
		budget  = flag.Int("budget", 64, "maximum number of measurements")
		name    = flag.String("name", "", "processor name in the emitted JSON (default: kernel name)")
		workers = flag.Int("workers", 1, "kernel worker threads: 1 measures the serial kernels, >1 or 0 (= GOMAXPROCS) the parallel ones")
		timeout = flag.Duration("timeout", 0, "per-measurement deadline; a timing still running at the deadline is abandoned and retried (enables the robust pipeline)")
		maxRep  = flag.Int("max-repeats", 0, "adaptive repetition cap of the robust pipeline (default 4×repeats; enables the robust pipeline)")
		ci      = flag.Float64("ci", 0, "target MAD-based relative confidence width per point (enables the robust pipeline)")
		seed    = flag.Uint64("fail-seed", 1, "seed of the injected measurement-fault plan")
		output  = flag.String("o", "", "output file (default stdout); written only on success, never partially")
	)
	flag.Var(&failSpecs, "fail", "injected measurement fault spec (repeatable), e.g. noise:p0:sigma=0.1")
	flag.Parse()
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	cfg := measure.Config{Repeats: *repeats, Workers: *workers}
	var oracle speed.Oracle
	switch *kernel {
	case "naive":
		oracle = measure.MatMulOracle(cfg, measure.Naive)
	case "blocked":
		oracle = measure.MatMulOracle(cfg, measure.Blocked)
	case "lu":
		oracle = measure.LUOracle(cfg)
	case "cholesky":
		oracle = measure.CholeskyOracle(cfg)
	case "arrayops":
		oracle = measure.ArrayOpsOracle(cfg)
	default:
		return fmt.Errorf("unknown kernel %q", *kernel)
	}
	if !(*minSize > 0) || !(*maxSize > *minSize) {
		return fmt.Errorf("invalid size interval [%v, %v]", *minSize, *maxSize)
	}
	if len(failSpecs) > 0 {
		plan, err := faults.ParseMeasureSpecs(*seed, failSpecs, nil)
		if err != nil {
			return err
		}
		oracle = faults.FaultyOracle(oracle, 0, plan)
	}
	b := speed.Builder{Eps: *eps, MaxMeasurements: *budget, LogDomain: true, QualityTarget: *ci}

	var (
		fn    *speed.PiecewiseLinear
		stats speed.BuildStats
		err   error
	)
	if *timeout > 0 || *maxRep > 0 || *ci > 0 {
		r := measure.Robust{
			Timeout:        *timeout,
			MinSamples:     *repeats,
			MaxSamples:     *maxRep,
			TargetRelWidth: *ci,
			Seed:           *seed,
		}
		fn, stats, err = b.BuildQ(r.Oracle(oracle), *minSize, *maxSize)
	} else {
		fn, stats, err = b.Build(oracle, *minSize, *maxSize)
	}
	for _, d := range stats.Diagnostics {
		fmt.Fprintln(os.Stderr, "speedbuild:", d)
	}
	if err != nil {
		// No partial model: diagnose and exit non-zero, leaving any -o
		// output file exactly as it was.
		return fmt.Errorf("build failed after %d measurements: %w", stats.Measurements, err)
	}

	label := *name
	if label == "" {
		label = *kernel
	}
	out := struct {
		Name         string               `json:"name"`
		Points       []speed.Point        `json:"points"`
		Qualities    []speed.PointQuality `json:"qualities,omitempty"`
		Measurements int                  `json:"measurements"`
		Remeasured   int                  `json:"remeasured,omitempty"`
		Repaired     bool                 `json:"repaired"`
		Quarantined  []float64            `json:"quarantined,omitempty"`
	}{
		Name:         label,
		Points:       fn.Points(),
		Measurements: stats.Measurements,
		Remeasured:   stats.Remeasured,
		Repaired:     stats.Repaired,
		Quarantined:  stats.Quarantined,
	}
	if *timeout > 0 || *maxRep > 0 || *ci > 0 {
		out.Qualities = stats.Qualities
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *output == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	// Write atomically: the destination is replaced only by a complete
	// document, and a failed build never reaches this point.
	tmp := *output + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, *output); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
